package view

import (
	"strings"
	"testing"

	"spritelynfs/internal/proto"
	"spritelynfs/internal/rpc"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
)

// fakeStore is a MapStore recording SetPrimary calls.
type fakeStore struct {
	m    proto.ShardMap
	sets []string
}

func (f *fakeStore) Map() proto.ShardMap { return f.m }
func (f *fakeStore) SetPrimary(shard uint32, addr string) {
	f.m.Servers[shard] = addr
	f.m.Version++
	f.sets = append(f.sets, addr)
}

// replica is one simulated shard server for the tests: a pinger with
// switchable liveness and replication status.
type replica struct {
	crashed bool
	synced  bool
	lag     uint32
}

// testbed assembles a one-shard viewservice with a primary and backup
// pinging it, returning everything the scenarios flip.
func testbed(t *testing.T, log *strings.Builder) (*sim.Kernel, *Service, *fakeStore, *replica, *replica) {
	t.Helper()
	k := sim.NewKernel(1)
	net := simnet.New(k, simnet.Config{})
	store := &fakeStore{m: proto.ShardMap{Version: 1, Servers: []string{"primary"}}}
	svc := NewService(k, rpc.NewEndpoint(k, net, "viewsvc", rpc.Options{Workers: 2}), store,
		Config{Interval: 100 * sim.Millisecond, DeadPings: 5, Log: log})
	svc.Register(0, "primary", "backup")
	pr, bk := &replica{synced: true}, &replica{synced: true}
	for _, m := range []struct {
		addr simnet.Addr
		r    *replica
	}{{"primary", pr}, {"backup", bk}} {
		m := m
		StartPinger(k, rpc.NewEndpoint(k, net, m.addr, rpc.Options{Workers: 1}), PingerConfig{
			Shard: 0, Self: m.addr, Service: "viewsvc",
			Interval: 100 * sim.Millisecond,
			Crashed:  func() bool { return m.r.crashed },
			Status:   func() (bool, uint32) { return m.r.synced, m.r.lag },
		})
	}
	return k, svc, store, pr, bk
}

// run drives the testbed for d of simulated time.
func run(k *sim.Kernel, d sim.Duration) {
	k.Go("test-driver", func(p *sim.Proc) {
		defer k.Stop()
		p.Sleep(d)
	})
	k.Run()
}

// TestPromotionOnPrimaryDeath is the happy path: the primary acks view
// 1, crashes, and within the dead-ping window the synced backup is
// promoted under view 2 with the map rewritten first.
func TestPromotionOnPrimaryDeath(t *testing.T) {
	var log strings.Builder
	k, svc, store, pr, _ := testbed(t, &log)
	k.Go("killer", func(p *sim.Proc) {
		p.Sleep(1 * sim.Second) // plenty of pings: view 1 is acked
		pr.crashed = true
	})
	run(k, 3*sim.Second)
	v := svc.View(0)
	if v.Num != 2 || v.Primary != "backup" || v.Backup != "" {
		t.Fatalf("view after primary death = %+v, want {2 backup \"\"}", v)
	}
	if len(store.sets) != 1 || store.sets[0] != "backup" {
		t.Fatalf("SetPrimary calls = %v, want exactly [backup]", store.sets)
	}
	if svc.Changes(0) != 1 {
		t.Fatalf("view changes = %d, want 1", svc.Changes(0))
	}
	if !strings.Contains(log.String(), "reason=primary-dead") {
		t.Fatalf("log missing primary-dead transition:\n%s", log.String())
	}
	// The new primary acks view 2 on its next ping.
	if !strings.Contains(log.String(), "view=2 primary=backup backup= reason=acked") {
		t.Fatalf("view 2 never acked by the promoted backup:\n%s", log.String())
	}
}

// TestNoPromotionWithoutAck is the split-brain rule: a primary that
// dies before ever acknowledging the current view is never succeeded —
// for all the service knows it is merely partitioned and still serving.
func TestNoPromotionWithoutAck(t *testing.T) {
	var log strings.Builder
	k, svc, store, pr, _ := testbed(t, &log)
	pr.crashed = true // never pings, so view 1 is never acked
	run(k, 5*sim.Second)
	if v := svc.View(0); v.Num != 1 || v.Primary != "primary" {
		t.Fatalf("unacked view was succeeded: %+v", v)
	}
	if len(store.sets) != 0 {
		t.Fatalf("map rewritten without a view change: %v", store.sets)
	}
}

// TestNoPromotionOfUnsyncedBackup: a backup whose pings report a
// replication gap is never promoted; once it reports synced again the
// promotion goes through.
func TestNoPromotionOfUnsyncedBackup(t *testing.T) {
	var log strings.Builder
	k, svc, _, pr, bk := testbed(t, &log)
	bk.synced = false
	k.Go("script", func(p *sim.Proc) {
		p.Sleep(1 * sim.Second)
		pr.crashed = true
		p.Sleep(2 * sim.Second) // well past the dead-ping window
		if v := svc.View(0); v.Num != 1 {
			t.Errorf("unsynced backup was promoted: %+v", v)
		}
		bk.synced = true
	})
	run(k, 5*sim.Second)
	if v := svc.View(0); v.Num != 2 || v.Primary != "backup" {
		t.Fatalf("synced backup not promoted after recovery: %+v", v)
	}
}

// TestBackupDeathPublishesBackuplessView: losing the backup bumps the
// view (so the primary stops streaming) without touching the map.
func TestBackupDeathPublishesBackuplessView(t *testing.T) {
	var log strings.Builder
	k, svc, store, _, bk := testbed(t, &log)
	k.Go("killer", func(p *sim.Proc) {
		p.Sleep(1 * sim.Second)
		bk.crashed = true
	})
	run(k, 3*sim.Second)
	v := svc.View(0)
	if v.Num != 2 || v.Primary != "primary" || v.Backup != "" {
		t.Fatalf("view after backup death = %+v, want {2 primary \"\"}", v)
	}
	if len(store.sets) != 0 {
		t.Fatalf("backup death rewrote the map: %v", store.sets)
	}
	if !strings.Contains(log.String(), "reason=backup-dead") {
		t.Fatalf("log missing backup-dead transition:\n%s", log.String())
	}
}

// TestViewsReportsReplicationStatus: the Get surface carries the
// primary's last-reported replication health.
func TestViewsReportsReplicationStatus(t *testing.T) {
	k, svc, _, pr, _ := testbed(t, &strings.Builder{})
	pr.synced, pr.lag = false, 7
	run(k, 1*sim.Second)
	vs := svc.Views()
	if len(vs) != 1 {
		t.Fatalf("Views() = %v, want one row", vs)
	}
	if vs[0].Synced || vs[0].Lag != 7 {
		t.Fatalf("row = %+v, want synced=false lag=7", vs[0])
	}
}
