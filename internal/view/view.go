// Package view is the cluster's control plane for replicated shards: a
// viewservice in the MIT-viewservice tradition. Each shard has a
// numbered view — a (primary, backup) pair — and the service is the only
// authority allowed to change it. Servers ping the service periodically;
// when a primary misses enough pings the service publishes the next
// view, promoting the backup, and pushes the change into the versioned
// shard map (through the MapStore) so the existing ErrNotHome / map-
// refetch machinery heals clients onto the new primary.
//
// Split-brain refusal is the one safety rule: view i+1 is never
// published until the primary of view i has acknowledged view i (by
// echoing its number in a ping). A primary that is merely partitioned
// from the service therefore cannot be succeeded behind its back until
// it has at least once agreed to the view it is being removed from —
// and a backup that never heard the full replication stream (its pings
// say so) is never promoted at all.
package view

import (
	"fmt"
	"io"
	"sort"

	"spritelynfs/internal/proto"
	"spritelynfs/internal/rpc"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
	"spritelynfs/internal/xdr"
)

// MapStore is the service's handle on the authoritative shard map: it
// reads the current map for ping replies and rewrites one shard's
// primary address when a view change promotes the backup. The cluster
// implements it; the map version bump and the push to the surviving
// servers happen inside SetPrimary.
type MapStore interface {
	Map() proto.ShardMap
	SetPrimary(shard uint32, addr string)
}

// Config tunes the service.
type Config struct {
	// Interval is the expected ping period. Zero means 100 ms.
	Interval sim.Duration
	// DeadPings is how many consecutive missed intervals declare a
	// server dead. Zero means 5.
	DeadPings int
	// Log, when set, receives one text line per view change.
	Log io.Writer
	// OnEvent, when set, observes every view change (flight recorder,
	// timelines, and the cluster's synchronous promotion hook). p is the
	// publishing process (nil for the registration event).
	OnEvent func(p *sim.Proc, shard uint32, v proto.View, reason string)
}

func (c *Config) fill() {
	if c.Interval == 0 {
		c.Interval = 100 * sim.Millisecond
	}
	if c.DeadPings == 0 {
		c.DeadPings = 5
	}
}

// memberState is what the service remembers about one server address.
type memberState struct {
	lastSeen sim.Time
	synced   bool
	lag      uint32
}

// shardState is one shard's row of the control plane.
type shardState struct {
	cur     proto.View
	acked   bool // the primary of cur has echoed cur.Num
	members map[string]*memberState
	changes uint64 // view transitions since registration
}

// Service is the viewservice. One instance runs per cluster, on its own
// endpoint; it is deliberately unreplicated (the classic lab
// simplification — the paper's recovery story already covers what
// happens when a control plane is briefly unavailable: nothing, until
// it returns).
type Service struct {
	k     *sim.Kernel
	ep    *rpc.Endpoint
	store MapStore
	cfg   Config

	shards map[uint32]*shardState
}

// NewService attaches the service to ep and starts its tick daemon.
func NewService(k *sim.Kernel, ep *rpc.Endpoint, store MapStore, cfg Config) *Service {
	cfg.fill()
	s := &Service{k: k, ep: ep, store: store, cfg: cfg, shards: make(map[uint32]*shardState)}
	ep.Register(proto.ProgView, s.serve)
	k.Go(string(ep.Addr())+"/view-tick", s.tickDaemon)
	return s
}

// Register installs shard's initial view (number 1). Both members are
// treated as just-seen so the tick daemon does not declare them dead
// before their first ping.
func (s *Service) Register(shard uint32, primary, backup string) {
	st := &shardState{
		cur:     proto.View{Num: 1, Primary: primary, Backup: backup},
		members: make(map[string]*memberState),
	}
	now := s.k.Now()
	st.members[primary] = &memberState{lastSeen: now}
	if backup != "" {
		st.members[backup] = &memberState{lastSeen: now}
	}
	s.shards[shard] = st
	s.logf(nil, shard, st.cur, "registered")
}

// View returns shard's current view.
func (s *Service) View(shard uint32) proto.View {
	if st, ok := s.shards[shard]; ok {
		return st.cur
	}
	return proto.View{}
}

// Views returns every shard's row, sorted by shard id, with the
// replication status from the most recent primary ping.
func (s *Service) Views() []proto.ShardView {
	ids := make([]uint32, 0, len(s.shards))
	for id := range s.shards {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]proto.ShardView, 0, len(ids))
	for _, id := range ids {
		st := s.shards[id]
		sv := proto.ShardView{Shard: id, View: st.cur}
		if m, ok := st.members[st.cur.Primary]; ok {
			sv.Synced = m.synced
			sv.Lag = m.lag
		}
		out = append(out, sv)
	}
	return out
}

// Changes returns how many view transitions shard has gone through.
func (s *Service) Changes(shard uint32) uint64 {
	if st, ok := s.shards[shard]; ok {
		return st.changes
	}
	return 0
}

// serve handles ProgView calls.
func (s *Service) serve(p *sim.Proc, from simnet.Addr, proc uint32, args []byte) ([]byte, rpc.Status) {
	switch proc {
	case proto.ViewProcPing:
		a := proto.DecodeViewPingArgs(xdr.NewDecoder(args))
		st, ok := s.shards[a.Shard]
		if !ok {
			return proto.Marshal(&proto.ViewPingReply{Status: proto.ErrInval}), rpc.StatusOK
		}
		m, ok := st.members[a.Addr]
		if !ok {
			m = &memberState{}
			st.members[a.Addr] = m
		}
		m.lastSeen = p.Now()
		m.synced = a.Synced
		m.lag = a.Lag
		if a.Addr == st.cur.Primary && a.ViewSeen == st.cur.Num && !st.acked {
			st.acked = true
			s.logf(p, a.Shard, st.cur, "acked")
		}
		return proto.Marshal(&proto.ViewPingReply{Status: proto.OK, View: st.cur, Map: s.store.Map()}), rpc.StatusOK
	case proto.ViewProcGet:
		return proto.Marshal(&proto.ViewGetReply{Status: proto.OK, Views: s.Views(), Map: s.store.Map()}), rpc.StatusOK
	}
	return nil, rpc.StatusProcUnavail
}

// tickDaemon scans for dead members once per interval and publishes the
// next view where the rules allow one.
func (s *Service) tickDaemon(p *sim.Proc) {
	for {
		p.Sleep(s.cfg.Interval)
		s.tick(p)
	}
}

func (s *Service) tick(p *sim.Proc) {
	now := p.Now()
	grace := sim.Duration(s.cfg.DeadPings) * s.cfg.Interval
	ids := make([]uint32, 0, len(s.shards))
	for id := range s.shards {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		st := s.shards[id]
		dead := func(addr string) bool {
			m, ok := st.members[addr]
			return ok && now.Sub(m.lastSeen) > grace
		}
		switch {
		case st.cur.Primary != "" && dead(st.cur.Primary):
			// The primary stopped pinging. Promote the backup — but
			// only if the current view was acked (split-brain rule),
			// there is a backup, it is alive, and its own pings say it
			// heard the whole replication stream.
			if !st.acked || st.cur.Backup == "" || dead(st.cur.Backup) {
				continue
			}
			if bm := st.members[st.cur.Backup]; bm == nil || !bm.synced {
				continue
			}
			next := proto.View{Num: st.cur.Num + 1, Primary: st.cur.Backup}
			// Map first, then publish: OnEvent consumers (the cluster's
			// promotion hook) must see the post-change map.
			s.store.SetPrimary(id, next.Primary)
			s.publish(p, id, st, next, "primary-dead")
		case st.cur.Backup != "" && dead(st.cur.Backup):
			// The backup died: publish a backup-less view so the
			// primary stops streaming to a black hole. The map does not
			// change.
			if !st.acked {
				continue
			}
			next := proto.View{Num: st.cur.Num + 1, Primary: st.cur.Primary}
			s.publish(p, id, st, next, "backup-dead")
		}
	}
}

func (s *Service) publish(p *sim.Proc, shard uint32, st *shardState, next proto.View, reason string) {
	st.cur = next
	st.acked = false
	st.changes++
	s.logf(p, shard, next, reason)
}

func (s *Service) logf(p *sim.Proc, shard uint32, v proto.View, reason string) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, "t=%v shard=%d view=%d primary=%s backup=%s reason=%s\n",
			s.k.Now(), shard, v.Num, v.Primary, v.Backup, reason)
	}
	if s.cfg.OnEvent != nil {
		s.cfg.OnEvent(p, shard, v, reason)
	}
}
