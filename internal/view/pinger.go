package view

import (
	"spritelynfs/internal/proto"
	"spritelynfs/internal/rpc"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
	"spritelynfs/internal/xdr"
)

// PingerConfig wires one server into the viewservice.
type PingerConfig struct {
	// Shard is the shard this server belongs to.
	Shard uint32
	// Self is the address the server reports itself as.
	Self simnet.Addr
	// Service is the viewservice's address.
	Service simnet.Addr
	// Interval is the ping period (should match the service's).
	Interval sim.Duration
	// Crashed, when set, suppresses pings while it returns true — a
	// crashed host does not ping, which is exactly how the service
	// learns it died.
	Crashed func() bool
	// Status, when set, supplies the replication health reported in
	// each ping: a primary reports whether its backup is caught up and
	// how many records are queued; a backup reports whether it has
	// seen a gap-free stream.
	Status func() (synced bool, lag uint32)
	// OnView fires once per view-number change with the new view and
	// the map that came with it. Returning true acknowledges the view
	// (the next ping echoes its number); returning false leaves the
	// old acknowledgement standing, and the service will keep waiting.
	OnView func(p *sim.Proc, v proto.View, m proto.ShardMap) bool
}

// Pinger is one server's periodic heartbeat into the viewservice.
type Pinger struct {
	k    *sim.Kernel
	ep   *rpc.Endpoint
	cfg  PingerConfig
	seen uint64
}

// StartPinger begins pinging on its own process.
func StartPinger(k *sim.Kernel, ep *rpc.Endpoint, cfg PingerConfig) *Pinger {
	pg := &Pinger{k: k, ep: ep, cfg: cfg}
	k.Go(string(cfg.Self)+"/view-ping", pg.loop)
	return pg
}

// ViewSeen returns the highest view number this server has acknowledged.
func (pg *Pinger) ViewSeen() uint64 { return pg.seen }

func (pg *Pinger) loop(p *sim.Proc) {
	for {
		p.Sleep(pg.cfg.Interval)
		if pg.cfg.Crashed != nil && pg.cfg.Crashed() {
			continue
		}
		var synced bool
		var lag uint32
		if pg.cfg.Status != nil {
			synced, lag = pg.cfg.Status()
		}
		args := &proto.ViewPingArgs{
			Shard: pg.cfg.Shard, Addr: string(pg.cfg.Self),
			ViewSeen: pg.seen, Synced: synced, Lag: lag,
		}
		// One attempt, no retries: the next ping is the retry, and a
		// backed-off retransmit schedule would just delay failure
		// detection.
		body, err := pg.ep.CallMsgEx(p, pg.cfg.Service, proto.ProgView, 1, proto.ViewProcPing,
			args, pg.cfg.Interval, 0)
		if err != nil {
			continue
		}
		r := proto.DecodeViewPingReply(xdr.NewDecoder(body))
		if r.Status != proto.OK {
			continue
		}
		if r.View.Num > pg.seen {
			ack := true
			if pg.cfg.OnView != nil {
				ack = pg.cfg.OnView(p, r.View, r.Map)
			}
			if ack {
				pg.seen = r.View.Num
			}
		}
	}
}
