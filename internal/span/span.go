// Package span is causal latency attribution for the protocol stack: a
// per-operation tree of timed intervals built on top of the causal op IDs
// minted by sim.Proc.BeginOp. Every client syscall becomes a root span
// (see WrapFS), and the instrumented layers underneath — client cache and
// attribute-cache work, biod flush waits, RPC wire time and retransmit
// gaps, server queueing, handler CPU, disk queue delay and arm time,
// callback round-trips — attach child spans as the operation flows
// through them, across processes and hosts.
//
// From the finished trees the Recorder derives three products:
//
//   - a critical-path breakdown (Summarize): elapsed time attributed to
//     exactly one category per instant — the deepest span covering that
//     instant wins — so the per-category sums always equal the root
//     duration, and "elapsed = X% disk arm + Y% server CPU + ..." is an
//     identity, not an estimate;
//   - a top-K slowest-ops capture: a bounded min-heap keyed on root-span
//     duration; the full span tree is retained only for the winners;
//   - histogram exemplars (EnableMetrics): per-root-name latency
//     histograms whose buckets remember the op ID of a recent sample, so
//     a p99 bucket links straight to a captured tree.
//
// Like trace.Tracer and the metrics types, everything is nil-safe: a nil
// *Recorder no-ops at every call site, so the instrumented hot paths pay
// one nil check when spans are off, and all paper-table outputs are
// byte-identical. The Recorder never sleeps, never touches the kernel
// RNG, and never blocks a simulation process, so arming it does not
// perturb simulated time. A mutex guards the structures because the
// standalone daemon records from the realtime kernel while HTTP readers
// snapshot concurrently.
package span

import (
	"sort"
	"sync"

	"spritelynfs/internal/metrics"
	"spritelynfs/internal/sim"
)

// Kind classifies what a span's time was spent on; it is the attribution
// category of the critical-path breakdown.
type Kind uint8

// Span kinds. Syscall and Daemon are root kinds; the rest are children.
const (
	Syscall   Kind = iota // a client syscall (root; self time = client other)
	Daemon                // a background daemon pass (root; sync/recovery)
	Cache                 // client block-cache work (fetch, dedup wait)
	Attr                  // client attribute-cache remote revalidation
	BiodWait              // waiting for the client's async write-behind pool
	RPC                   // an RPC round-trip (self time = wire + server)
	Retrans               // a timed-out RPC attempt window
	Callback              // a server→client callback round-trip
	Serve                 // server worker handling one call (self = other)
	SrvQueue              // request waiting in the server work queue
	CPUQueue              // waiting for the server CPU resource
	CPU                   // server handler CPU charge
	DiskQueue             // waiting for the disk resource
	DiskArm               // disk positioning + transfer
	kindCount
)

var kindNames = [kindCount]string{
	Syscall: "syscall", Daemon: "daemon", Cache: "cache", Attr: "attr",
	BiodWait: "biod-wait", RPC: "rpc", Retrans: "retrans",
	Callback: "callback", Serve: "serve", SrvQueue: "srv-queue",
	CPUQueue: "cpu-queue", CPU: "cpu", DiskQueue: "disk-queue",
	DiskArm: "disk-arm",
}

// displayNames are the breakdown-table row labels.
var displayNames = [kindCount]string{
	Syscall: "client other", Daemon: "daemon", Cache: "client cache",
	Attr: "attr revalidate", BiodWait: "biod wait", RPC: "wire",
	Retrans: "retransmit", Callback: "callback wait",
	Serve: "server other", SrvQueue: "server queue",
	CPUQueue: "server cpu queue", CPU: "server cpu",
	DiskQueue: "disk queue", DiskArm: "disk arm",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind?"
}

// Display returns the human-readable breakdown label for k.
func (k Kind) Display() string {
	if int(k) < len(displayNames) {
		return displayNames[k]
	}
	return "?"
}

// node is one span inside a trace.
type node struct {
	parent     int32 // index into trace.nodes, -1 for the root
	depth      int32
	kind       Kind
	name       string
	host       string
	start, end sim.Time
	open       bool
}

// trace is one operation's span tree: a root (index 0) plus children.
type trace struct {
	id         uint64
	op         uint64 // causal op ID; lookup key while open
	registered bool   // byOp[op] == this
	done       bool
	nodes      []node
}

// stack tracks a process's open spans; its top is the parent of the next
// span begun on that process.
type stack struct {
	t   *trace
	idx []int32
}

// Recorder collects span trees and their derived aggregates. Create with
// NewRecorder; a nil *Recorder is safe everywhere and records nothing.
type Recorder struct {
	mu    sync.Mutex
	clock func() sim.Time
	topK  int

	stacks    map[*sim.Proc]*stack
	byOp      map[uint64]*trace
	nextTrace uint64

	agg                  Agg
	heap                 opHeap
	captured             map[uint64]*SlowOp // op → captured winner
	windowLo, windowHi   sim.Time
	haveWindow           bool

	reg   *metrics.Registry
	hists map[string]*metrics.Histogram
}

// DefaultTopK is the slow-op capture size when none is configured.
const DefaultTopK = 32

// NewRecorder returns a recorder timestamping with clock and retaining
// the topK slowest operations (DefaultTopK if topK <= 0).
func NewRecorder(clock func() sim.Time, topK int) *Recorder {
	if topK <= 0 {
		topK = DefaultTopK
	}
	return &Recorder{
		clock:    clock,
		topK:     topK,
		stacks:   map[*sim.Proc]*stack{},
		byOp:     map[uint64]*trace{},
		captured: map[uint64]*SlowOp{},
		hists:    map[string]*metrics.Histogram{},
	}
}

// EnableMetrics registers per-root-name latency histograms (with op-ID
// exemplars) into reg as snfs_span_root_us{name="..."}.
func (r *Recorder) EnableMetrics(reg *metrics.Registry) {
	if r == nil || reg == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reg = reg
	reg.Help("snfs_span_root_us", "root span (whole operation) latency by syscall name, with op-ID exemplars")
}

// Handle identifies an open span; End closes it. The zero Handle (from a
// nil recorder) is safe to End.
type Handle struct {
	r   *Recorder
	t   *trace
	p   *sim.Proc
	idx int32
	ok  bool
}

// Begin opens a span on process p. Parentage: the innermost open span on
// p if it has one; otherwise, if p carries a causal op ID with an open
// trace (a server worker or callback handler continuing a client's
// operation), the innermost open span of that trace; otherwise the new
// span roots a fresh trace. Safe on a nil recorder.
func (r *Recorder) Begin(p *sim.Proc, host string, kind Kind, name string) Handle {
	if r == nil || p == nil {
		return Handle{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock()
	t, parent := r.resolve(p)
	if t == nil {
		t = &trace{id: r.nextTrace, op: p.Op()}
		r.nextTrace++
		if t.op != 0 {
			if _, taken := r.byOp[t.op]; !taken {
				r.byOp[t.op] = t
				t.registered = true
			}
		}
	}
	depth := int32(0)
	if parent >= 0 {
		depth = t.nodes[parent].depth + 1
	}
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{
		parent: parent, depth: depth, kind: kind, name: name, host: host,
		start: now, open: true,
	})
	st := r.stacks[p]
	if st == nil {
		st = &stack{}
		r.stacks[p] = st
	}
	if len(st.idx) == 0 {
		st.t = t
	}
	st.idx = append(st.idx, idx)
	return Handle{r: r, t: t, p: p, idx: idx, ok: true}
}

// Add records an already-finished interval [start, end) as a child of
// p's current span — the shape of retroactive measurements like resource
// queueing delay, where the wait is only known once it is over. Safe on a
// nil recorder; zero-length intervals are dropped.
func (r *Recorder) Add(p *sim.Proc, host string, kind Kind, name string, start, end sim.Time) {
	if r == nil || p == nil || end <= start {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, parent := r.resolve(p)
	if t == nil {
		// No causal context (an untagged daemon): a degenerate one-span
		// trace, finalized immediately into the background bucket.
		t = &trace{id: r.nextTrace, op: p.Op()}
		r.nextTrace++
		t.nodes = append(t.nodes, node{
			parent: -1, kind: kind, name: name, host: host,
			start: start, end: end,
		})
		r.finalize(t)
		return
	}
	depth := t.nodes[parent].depth + 1
	t.nodes = append(t.nodes, node{
		parent: parent, depth: depth, kind: kind, name: name, host: host,
		start: start, end: end,
	})
}

// End closes the span. Ending a root finalizes its trace: attribution,
// aggregation, and slow-op capture happen here.
func (h Handle) End() {
	if !h.ok {
		return
	}
	r := h.r
	r.mu.Lock()
	defer r.mu.Unlock()
	t := h.t
	if int(h.idx) < len(t.nodes) {
		n := &t.nodes[h.idx]
		if n.open {
			n.open = false
			n.end = r.clock()
		}
	}
	if st := r.stacks[h.p]; st != nil && st.t == t {
		for i := len(st.idx) - 1; i >= 0; i-- {
			if st.idx[i] == h.idx {
				st.idx = append(st.idx[:i], st.idx[i+1:]...)
				break
			}
		}
		if len(st.idx) == 0 {
			delete(r.stacks, h.p)
		}
	}
	if h.idx == 0 && !t.done {
		r.finalize(t)
	}
}

// resolve finds the trace and parent index for a new node on p, or
// (nil, -1) when p has no causal context. Caller holds r.mu.
func (r *Recorder) resolve(p *sim.Proc) (*trace, int32) {
	if st := r.stacks[p]; st != nil && len(st.idx) > 0 {
		t := st.t
		// Root spans open before the syscall mints its op ID (the vfs
		// wrapper sits outside the client); adopt the current ID the
		// first time a child sees it so cross-process lookups resolve.
		if cur := p.Op(); cur != 0 && cur != t.op {
			r.rekey(t, cur)
		}
		return t, st.idx[len(st.idx)-1]
	}
	if op := p.Op(); op != 0 {
		if t := r.byOp[op]; t != nil && !t.done {
			return t, innermostOpen(t)
		}
	}
	return nil, -1
}

// rekey moves t to a new causal op ID. Caller holds r.mu.
func (r *Recorder) rekey(t *trace, op uint64) {
	if t.registered {
		delete(r.byOp, t.op)
		t.registered = false
	}
	t.op = op
	if _, taken := r.byOp[op]; !taken {
		r.byOp[op] = t
		t.registered = true
	}
}

// innermostOpen returns the deepest open node of t (ties: latest index).
func innermostOpen(t *trace) int32 {
	best, bd := int32(-1), int32(-1)
	for i := range t.nodes {
		if t.nodes[i].open && t.nodes[i].depth >= bd {
			best, bd = int32(i), t.nodes[i].depth
		}
	}
	return best
}

// finalize closes out a trace: attribution sweep, aggregate update,
// exemplar observation, and slow-op offer. Caller holds r.mu.
func (r *Recorder) finalize(t *trace) {
	t.done = true
	if t.registered {
		delete(r.byOp, t.op)
		t.registered = false
	}
	root := &t.nodes[0]
	if root.open {
		root.open = false
		root.end = r.clock()
	}
	dur := root.end.Sub(root.start)
	if dur < 0 {
		dur = 0
	}
	cats := attribute(t)
	if !r.haveWindow || root.start < r.windowLo {
		r.windowLo = root.start
	}
	if !r.haveWindow || root.end > r.windowHi {
		r.windowHi = root.end
	}
	r.haveWindow = true
	if root.kind == Syscall {
		r.agg.Ops++
		r.agg.RootTime += dur
		for i := range cats {
			r.agg.Cats[i] += cats[i]
		}
	} else {
		r.agg.Background++
		for i := range cats {
			r.agg.BGCats[i] += cats[i]
		}
	}
	r.observeRoot(root, t.op, dur)
	r.offer(t, dur, cats)
}

// observeRoot records the root latency (with an op exemplar) into the
// per-name histogram when metrics are enabled. Caller holds r.mu.
func (r *Recorder) observeRoot(root *node, op uint64, dur sim.Duration) {
	if r.reg == nil {
		return
	}
	name := metrics.Label("snfs_span_root_us", "name", root.name)
	h := r.hists[name]
	if h == nil {
		h = r.reg.Histogram(name)
		r.hists[name] = h
	}
	h.ObserveOp(int64(dur), op)
}

// attribute charges every instant of the root window to exactly one
// category: the deepest span covering it (ties: later start, then later
// index). Open children are clamped to the root's end, so the per-kind
// sums always equal the root duration.
func attribute(t *trace) [kindCount]sim.Duration {
	var cats [kindCount]sim.Duration
	root := t.nodes[0]
	lo, hi := root.start, root.end
	if hi <= lo {
		return cats
	}
	type iv struct {
		s, e  sim.Time
		depth int32
		idx   int32
		kind  Kind
	}
	ivs := make([]iv, 0, len(t.nodes))
	cuts := make([]sim.Time, 0, 2*len(t.nodes))
	for i := range t.nodes {
		n := t.nodes[i]
		s, e := n.start, n.end
		if n.open || e > hi {
			e = hi
		}
		if s < lo {
			s = lo
		}
		if e <= s {
			continue
		}
		ivs = append(ivs, iv{s: s, e: e, depth: n.depth, idx: int32(i), kind: n.kind})
		cuts = append(cuts, s, e)
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	prev := sim.Time(-1)
	for _, c := range cuts {
		if c == prev {
			continue
		}
		if prev >= lo && c > prev {
			// Charge [prev, c) to the deepest covering interval.
			best := -1
			for i := range ivs {
				if ivs[i].s <= prev && ivs[i].e >= c {
					if best < 0 ||
						ivs[i].depth > ivs[best].depth ||
						(ivs[i].depth == ivs[best].depth &&
							(ivs[i].s > ivs[best].s ||
								(ivs[i].s == ivs[best].s && ivs[i].idx > ivs[best].idx))) {
						best = i
					}
				}
			}
			if best >= 0 {
				cats[ivs[best].kind] += c.Sub(prev)
			}
		}
		prev = c
	}
	return cats
}

// Agg is the running critical-path aggregate: syscall-rooted traces
// (Ops/RootTime/Cats) and everything else (Background/BGCats — daemon
// passes, async write-behind, untagged work).
type Agg struct {
	Ops        int64
	RootTime   sim.Duration
	Cats       [kindCount]sim.Duration
	Background int64
	BGCats     [kindCount]sim.Duration
}

// Breakdown returns a snapshot of the running aggregate (zero for nil).
func (r *Recorder) Breakdown() Agg {
	if r == nil {
		return Agg{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.agg
}

// Window returns the time range covered by finalized roots.
func (r *Recorder) Window() (lo, hi sim.Time, ok bool) {
	if r == nil {
		return 0, 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.windowLo, r.windowHi, r.haveWindow
}
