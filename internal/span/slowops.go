package span

import (
	"container/heap"
	"fmt"
	"io"
	"sort"

	"spritelynfs/internal/sim"
)

// Span is one node of a captured tree, JSON-ready.
type Span struct {
	ID      int    `json:"id"`
	Parent  int    `json:"parent"` // -1 for the root
	Depth   int    `json:"depth"`
	Kind    string `json:"kind"`
	Name    string `json:"name"`
	Host    string `json:"host"`
	StartUS int64  `json:"start_us"`
	EndUS   int64  `json:"end_us"`
}

// SlowOp is one captured operation: the root's identity, its attribution,
// and the full span tree (retained only for top-K winners).
type SlowOp struct {
	Op      uint64             `json:"op"`
	Trace   uint64             `json:"trace"`
	Name    string             `json:"name"`
	Host    string             `json:"host"`
	Kind    string             `json:"kind"`
	StartUS int64              `json:"start_us"`
	DurUS   int64              `json:"dur_us"`
	CatsUS  map[string]int64   `json:"breakdown_us,omitempty"`
	Spans   []Span             `json:"spans"`
}

// opHeap is a min-heap by duration: the cheapest winner sits at the top,
// ready to be evicted by a slower operation.
type opHeap []*SlowOp

func (h opHeap) Len() int { return len(h) }
func (h opHeap) Less(i, j int) bool {
	if h[i].DurUS != h[j].DurUS {
		return h[i].DurUS < h[j].DurUS
	}
	return h[i].Trace > h[j].Trace // equal durations: evict the newer one first
}
func (h opHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *opHeap) Push(x any)   { *h = append(*h, x.(*SlowOp)) }
func (h *opHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// offer considers a finalized trace for the top-K capture. The full tree
// is materialized only when the operation actually wins a slot. Caller
// holds r.mu.
func (r *Recorder) offer(t *trace, dur sim.Duration, cats [kindCount]sim.Duration) {
	if len(r.heap) >= r.topK && int64(dur) <= r.heap[0].DurUS {
		return
	}
	so := captureTrace(t, dur, cats)
	if len(r.heap) >= r.topK {
		evicted := heap.Pop(&r.heap).(*SlowOp)
		if evicted.Op != 0 && r.captured[evicted.Op] == evicted {
			delete(r.captured, evicted.Op)
		}
	}
	heap.Push(&r.heap, so)
	if so.Op != 0 {
		r.captured[so.Op] = so
	}
}

// captureTrace copies a finalized trace into its JSON form.
func captureTrace(t *trace, dur sim.Duration, cats [kindCount]sim.Duration) *SlowOp {
	root := t.nodes[0]
	so := &SlowOp{
		Op: t.op, Trace: t.id,
		Name: root.name, Host: root.host, Kind: root.kind.String(),
		StartUS: int64(root.start), DurUS: int64(dur),
		Spans: make([]Span, 0, len(t.nodes)),
	}
	for k := Kind(0); k < kindCount; k++ {
		if cats[k] > 0 {
			if so.CatsUS == nil {
				so.CatsUS = map[string]int64{}
			}
			so.CatsUS[k.String()] = int64(cats[k])
		}
	}
	for i, n := range t.nodes {
		end := n.end
		if n.open {
			end = root.end
		}
		so.Spans = append(so.Spans, Span{
			ID: i, Parent: int(n.parent), Depth: int(n.depth),
			Kind: n.kind.String(), Name: n.name, Host: n.host,
			StartUS: int64(n.start), EndUS: int64(end),
		})
	}
	return so
}

// SlowOps returns the captured operations, slowest first (nil-safe).
func (r *Recorder) SlowOps() []SlowOp {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]SlowOp, 0, len(r.heap))
	for _, so := range r.heap {
		out = append(out, *so)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].DurUS != out[j].DurUS {
			return out[i].DurUS > out[j].DurUS
		}
		return out[i].Trace < out[j].Trace
	})
	return out
}

// Lookup returns the captured tree for a causal op ID, if it won a slot.
func (r *Recorder) Lookup(op uint64) (SlowOp, bool) {
	if r == nil {
		return SlowOp{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	so, ok := r.captured[op]
	if !ok {
		return SlowOp{}, false
	}
	return *so, true
}

// Component is one row of the rendered breakdown.
type Component struct {
	Name      string  `json:"name"`
	Seconds   float64 `json:"seconds"`
	PctOfWall float64 `json:"pct_of_wall"`
}

// Summary is the JSON-ready critical-path breakdown plus the slow-op
// capture: what snfs-bench writes to spans*.json and /slowops serves.
//
// Components partition the wall time (elapsed × clients): every
// per-category syscall second, plus a compute/idle residual for time the
// clients spent outside syscalls. AccountedPct is their sum over the
// wall — ~100 whenever the attribution sweep lost nothing.
type Summary struct {
	Ops             int64       `json:"ops"`
	BackgroundRoots int64       `json:"background_roots"`
	ElapsedSeconds  float64     `json:"elapsed_seconds"`
	Clients         int         `json:"clients"`
	WallSeconds     float64     `json:"wall_seconds"`
	SyscallSeconds  float64     `json:"syscall_seconds"`
	Components      []Component `json:"components"`
	AccountedPct    float64     `json:"accounted_pct"`
	Background      []Component `json:"background_components,omitempty"`
	DiskArmSeconds  float64     `json:"disk_arm_seconds"`
	// DiskBusySeconds is filled by the harness from the disk-busy gauge
	// so consumers can reconcile the span view against it.
	DiskBusySeconds float64  `json:"disk_busy_seconds,omitempty"`
	SlowOps         []SlowOp `json:"slow_ops"`
}

// Summarize renders the aggregate into a Summary. elapsed <= 0 uses the
// recorder's observed root window; clients < 1 is treated as 1.
func (r *Recorder) Summarize(elapsed sim.Duration, clients int) *Summary {
	if r == nil {
		return nil
	}
	agg := r.Breakdown()
	if elapsed <= 0 {
		if lo, hi, ok := r.Window(); ok {
			elapsed = hi.Sub(lo)
		}
	}
	if clients < 1 {
		clients = 1
	}
	s := &Summary{
		Ops:             agg.Ops,
		BackgroundRoots: agg.Background,
		ElapsedSeconds:  elapsed.Seconds(),
		Clients:         clients,
		WallSeconds:     elapsed.Seconds() * float64(clients),
		SyscallSeconds:  agg.RootTime.Seconds(),
		SlowOps:         r.SlowOps(),
	}
	var attributed float64
	for k := Kind(0); k < kindCount; k++ {
		if agg.Cats[k] > 0 {
			sec := agg.Cats[k].Seconds()
			attributed += sec
			s.Components = append(s.Components, Component{
				Name: k.Display(), Seconds: sec,
				PctOfWall: pct(sec, s.WallSeconds),
			})
		}
		if agg.BGCats[k] > 0 {
			sec := agg.BGCats[k].Seconds()
			s.Background = append(s.Background, Component{
				Name: k.Display(), Seconds: sec,
				PctOfWall: pct(sec, s.WallSeconds),
			})
		}
	}
	s.DiskArmSeconds = (agg.Cats[DiskArm] + agg.BGCats[DiskArm]).Seconds()
	if residual := s.WallSeconds - s.SyscallSeconds; residual > 0 {
		s.Components = append(s.Components, Component{
			Name: "compute/idle", Seconds: residual,
			PctOfWall: pct(residual, s.WallSeconds),
		})
		attributed += residual
	}
	s.AccountedPct = pct(attributed, s.WallSeconds)
	sort.SliceStable(s.Components, func(i, j int) bool {
		return s.Components[i].Seconds > s.Components[j].Seconds
	})
	sort.SliceStable(s.Background, func(i, j int) bool {
		return s.Background[i].Seconds > s.Background[j].Seconds
	})
	return s
}

func pct(part, whole float64) float64 {
	if whole <= 0 {
		return 0
	}
	return 100 * part / whole
}

// Render writes the breakdown as a human-readable table.
func (s *Summary) Render(w io.Writer) {
	if s == nil {
		return
	}
	fmt.Fprintf(w, "critical-path breakdown: %d ops, %.2fs syscall time over %.2fs elapsed x %d client(s) = %.2fs wall (accounted %.1f%%)\n",
		s.Ops, s.SyscallSeconds, s.ElapsedSeconds, s.Clients, s.WallSeconds, s.AccountedPct)
	for _, c := range s.Components {
		fmt.Fprintf(w, "  %-18s %10.3fs  %5.1f%%\n", c.Name, c.Seconds, c.PctOfWall)
	}
	if len(s.Background) > 0 {
		fmt.Fprintf(w, "background (%d roots, concurrent with the above):\n", s.BackgroundRoots)
		for _, c := range s.Background {
			fmt.Fprintf(w, "  %-18s %10.3fs\n", c.Name, c.Seconds)
		}
	}
	if s.DiskBusySeconds > 0 {
		fmt.Fprintf(w, "disk reconciliation: %.3fs span arm time vs %.3fs busy gauge (%.1f%%)\n",
			s.DiskArmSeconds, s.DiskBusySeconds, pct(s.DiskArmSeconds, s.DiskBusySeconds))
	}
	if n := len(s.SlowOps); n > 0 {
		top := s.SlowOps[0]
		fmt.Fprintf(w, "slowest op: #%d %s/%s %.3fs (%d captured)\n",
			top.Op, top.Host, top.Name, float64(top.DurUS)/1e6, n)
	}
}
