package span

import (
	"fmt"
	"strings"
	"testing"

	"spritelynfs/internal/metrics"
	"spritelynfs/internal/sim"
)

// TestAttributionDeepestWins builds one operation with nested spans and
// checks the sweep's identity: every instant of the root window charged
// to exactly one category, the deepest span covering it.
func TestAttributionDeepestWins(t *testing.T) {
	k := sim.NewKernel(1)
	r := NewRecorder(k.Now, 8)
	k.Go("client", func(p *sim.Proc) {
		p.BeginOp()
		root := r.Begin(p, "client", Syscall, "read")
		p.Sleep(10 * sim.Millisecond) // client other
		rpc := r.Begin(p, "server", RPC, "read")
		p.Sleep(5 * sim.Millisecond) // wire
		srv := r.Begin(p, "server", Serve, "read")
		p.Sleep(2 * sim.Millisecond) // server other
		// Retroactive disk interval, deepest, covers the last 8 ms.
		t0 := p.Now()
		p.Sleep(8 * sim.Millisecond)
		r.Add(p, "disk", DiskArm, "read", t0, p.Now())
		srv.End()
		p.Sleep(5 * sim.Millisecond) // wire again
		rpc.End()
		p.Sleep(3 * sim.Millisecond) // client other
		root.End()
	})
	k.Run()

	agg := r.Breakdown()
	if agg.Ops != 1 {
		t.Fatalf("ops = %d, want 1", agg.Ops)
	}
	want := map[Kind]sim.Duration{
		Syscall: 13 * sim.Millisecond,
		RPC:     10 * sim.Millisecond,
		Serve:   2 * sim.Millisecond,
		DiskArm: 8 * sim.Millisecond,
	}
	var sum sim.Duration
	for kd := Kind(0); kd < kindCount; kd++ {
		sum += agg.Cats[kd]
		if agg.Cats[kd] != want[kd] {
			t.Errorf("cats[%s] = %v, want %v", kd, agg.Cats[kd], want[kd])
		}
	}
	if sum != agg.RootTime || agg.RootTime != 33*sim.Millisecond {
		t.Errorf("sum(cats) = %v, root = %v, want both 33ms", sum, agg.RootTime)
	}
}

// TestCrossProcParenting hands an op ID to a second process (the server-
// worker shape) and checks its spans land inside the client's trace.
func TestCrossProcParenting(t *testing.T) {
	k := sim.NewKernel(1)
	r := NewRecorder(k.Now, 8)
	k.Go("client", func(p *sim.Proc) {
		op := p.BeginOp()
		root := r.Begin(p, "client", Syscall, "write")
		wg := sim.NewWaitGroup(k, 1)
		k.Go("worker", func(wp *sim.Proc) {
			defer wg.Done()
			wp.SetOp(op)
			sp := r.Begin(wp, "server", Serve, "write")
			wp.Sleep(4 * sim.Millisecond)
			sp.End()
		})
		p.Sleep(6 * sim.Millisecond)
		wg.Wait(p)
		root.End()
	})
	k.Run()

	agg := r.Breakdown()
	if agg.Ops != 1 || agg.Background != 0 {
		t.Fatalf("ops=%d background=%d, want 1/0 (worker span should join the syscall trace)",
			agg.Ops, agg.Background)
	}
	if agg.Cats[Serve] != 4*sim.Millisecond {
		t.Errorf("serve = %v, want 4ms", agg.Cats[Serve])
	}
	ops := r.SlowOps()
	if len(ops) != 1 || len(ops[0].Spans) != 2 {
		t.Fatalf("captured %d ops / %d spans, want 1 op with 2 spans", len(ops), len(ops[0].Spans))
	}
	if ops[0].Spans[1].Parent != 0 {
		t.Errorf("worker span parent = %d, want 0 (the root)", ops[0].Spans[1].Parent)
	}
}

// TestTopKEviction runs many more operations than the capture holds and
// checks the survivors are exactly the K slowest, in order, and that
// Lookup serves winners only.
func TestTopKEviction(t *testing.T) {
	const K = 4
	k := sim.NewKernel(1)
	r := NewRecorder(k.Now, K)
	// Durations 1..12 ms in a shuffled order so eviction pressure comes
	// from both directions.
	durs := []int{7, 1, 12, 3, 9, 2, 11, 5, 8, 4, 10, 6}
	opByDur := map[int]uint64{}
	k.Go("client", func(p *sim.Proc) {
		for _, d := range durs {
			op := p.BeginOp()
			opByDur[d] = op
			h := r.Begin(p, "client", Syscall, fmt.Sprintf("op%d", d))
			p.Sleep(sim.Duration(d) * sim.Millisecond)
			h.End()
			p.SetOp(0)
		}
	})
	k.Run()

	got := r.SlowOps()
	if len(got) != K {
		t.Fatalf("captured %d, want %d", len(got), K)
	}
	for i, wantMS := range []int{12, 11, 10, 9} {
		if got[i].DurUS != int64(wantMS)*1000 {
			t.Errorf("slowops[%d] = %dus, want %dms", i, got[i].DurUS, wantMS)
		}
		if got[i].Op != opByDur[wantMS] {
			t.Errorf("slowops[%d].Op = %d, want %d", i, got[i].Op, opByDur[wantMS])
		}
		if _, ok := r.Lookup(got[i].Op); !ok {
			t.Errorf("Lookup(%d) missed a winner", got[i].Op)
		}
	}
	if _, ok := r.Lookup(opByDur[1]); ok {
		t.Errorf("Lookup found an evicted op")
	}
}

// TestBackgroundRoots checks daemon-rooted and orphan work stays out of
// the syscall aggregate (it is concurrent, not part of any op's path).
func TestBackgroundRoots(t *testing.T) {
	k := sim.NewKernel(1)
	r := NewRecorder(k.Now, 8)
	k.Go("daemon", func(p *sim.Proc) {
		p.BeginOp()
		h := r.Begin(p, "client", Daemon, "sync-pass")
		p.Sleep(3 * sim.Millisecond)
		h.End()
	})
	k.Go("orphan", func(p *sim.Proc) {
		// No op, no open span: Add finalizes a degenerate trace.
		p.Sleep(1 * sim.Millisecond)
		t0 := p.Now()
		p.Sleep(2 * sim.Millisecond)
		r.Add(p, "disk", DiskArm, "flush", t0, p.Now())
	})
	k.Run()

	agg := r.Breakdown()
	if agg.Ops != 0 || agg.RootTime != 0 {
		t.Errorf("syscall agg polluted: ops=%d root=%v", agg.Ops, agg.RootTime)
	}
	if agg.Background != 2 {
		t.Errorf("background roots = %d, want 2", agg.Background)
	}
	if agg.BGCats[Daemon] != 3*sim.Millisecond || agg.BGCats[DiskArm] != 2*sim.Millisecond {
		t.Errorf("bg cats = daemon %v / disk-arm %v, want 3ms / 2ms",
			agg.BGCats[Daemon], agg.BGCats[DiskArm])
	}
}

// TestRekeyAdoptsOp mirrors the vfs-wrapper shape: the root opens before
// the client mints the op ID, and the first child begun after minting
// must rekey the trace so cross-process lookups resolve.
func TestRekeyAdoptsOp(t *testing.T) {
	k := sim.NewKernel(1)
	r := NewRecorder(k.Now, 8)
	var op uint64
	k.Go("client", func(p *sim.Proc) {
		root := r.Begin(p, "client", Syscall, "open") // op still 0
		op = p.BeginOp()                              // minted by the inner client
		child := r.Begin(p, "client", Cache, "fetch") // triggers the rekey
		p.Sleep(1 * sim.Millisecond)
		child.End()
		wg := sim.NewWaitGroup(k, 1)
		k.Go("worker", func(wp *sim.Proc) {
			defer wg.Done()
			wp.SetOp(op)
			sp := r.Begin(wp, "server", Serve, "open")
			wp.Sleep(1 * sim.Millisecond)
			sp.End()
		})
		wg.Wait(p)
		root.End()
		p.SetOp(0)
	})
	k.Run()

	so, ok := r.Lookup(op)
	if !ok {
		t.Fatalf("trace not captured under adopted op %d", op)
	}
	if len(so.Spans) != 3 {
		t.Fatalf("spans = %d, want 3 (root, fetch, serve in one trace)", len(so.Spans))
	}
}

// TestSummarizeAccounts checks the headline identity: components (plus
// the compute/idle residual) sum to ~100% of wall time.
func TestSummarizeAccounts(t *testing.T) {
	k := sim.NewKernel(1)
	r := NewRecorder(k.Now, 8)
	k.Go("client", func(p *sim.Proc) {
		p.Sleep(5 * sim.Millisecond) // compute before the op
		p.BeginOp()
		root := r.Begin(p, "client", Syscall, "read")
		p.Sleep(10 * sim.Millisecond)
		root.End()
		p.SetOp(0)
	})
	k.Run()

	s := r.Summarize(15*sim.Millisecond, 1)
	if s.AccountedPct < 99.99 || s.AccountedPct > 100.01 {
		t.Errorf("accounted = %.2f%%, want 100%%", s.AccountedPct)
	}
	var total float64
	for _, c := range s.Components {
		total += c.Seconds
	}
	if diff := total - s.WallSeconds; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("components sum %.6fs != wall %.6fs", total, s.WallSeconds)
	}
	var buf strings.Builder
	s.Render(&buf)
	if !strings.Contains(buf.String(), "critical-path breakdown") {
		t.Errorf("render missing header:\n%s", buf.String())
	}
}

// TestNilRecorder exercises every entry point on a nil recorder.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	k := sim.NewKernel(1)
	k.Go("p", func(p *sim.Proc) {
		h := r.Begin(p, "x", Syscall, "read")
		r.Add(p, "x", DiskArm, "read", 0, 10)
		h.End()
	})
	k.Run()
	r.EnableMetrics(metrics.New())
	if got := r.SlowOps(); got != nil {
		t.Errorf("nil SlowOps = %v", got)
	}
	if _, ok := r.Lookup(1); ok {
		t.Errorf("nil Lookup hit")
	}
	if s := r.Summarize(0, 1); s != nil {
		t.Errorf("nil Summarize = %v", s)
	}
	if agg := r.Breakdown(); agg.Ops != 0 {
		t.Errorf("nil Breakdown = %+v", agg)
	}
	if _, _, ok := r.Window(); ok {
		t.Errorf("nil Window ok")
	}
}

// TestExemplarHistogram checks the metrics hookup: root latencies land in
// the per-name histogram with the op ID stamped on the right bucket.
func TestExemplarHistogram(t *testing.T) {
	k := sim.NewKernel(1)
	r := NewRecorder(k.Now, 8)
	reg := metrics.New()
	r.EnableMetrics(reg)
	var op uint64
	k.Go("client", func(p *sim.Proc) {
		op = p.BeginOp()
		root := r.Begin(p, "client", Syscall, "read")
		p.Sleep(10 * sim.Millisecond)
		root.End()
		p.SetOp(0)
	})
	k.Run()

	h := reg.Histogram(metrics.Label("snfs_span_root_us", "name", "read"))
	if h.Count() != 1 {
		t.Fatalf("histogram count = %d, want 1", h.Count())
	}
	b := metrics.BucketOf(int64(10 * sim.Millisecond))
	if got := h.Exemplar(b); got != op {
		t.Errorf("exemplar in bucket %d = %d, want op %d", b, got, op)
	}
}
