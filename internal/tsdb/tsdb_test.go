package tsdb

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"spritelynfs/internal/metrics"
	"spritelynfs/internal/sim"
)

func TestTimelineRing(t *testing.T) {
	tl := NewTimeline(4)
	for i := 0; i < 10; i++ {
		tl.Add("x:rate", KindRate, sim.Time(i), float64(i))
	}
	pts := tl.Points("x:rate")
	if len(pts) != 4 {
		t.Fatalf("retained %d points, want 4", len(pts))
	}
	for i, p := range pts {
		if want := sim.Time(6 + i); p.T != want {
			t.Fatalf("point %d at %d, want %d (chronological, most recent 4)", i, p.T, want)
		}
	}
	d := tl.Dump()
	if len(d.Series) != 1 || d.Series[0].Total != 10 || d.Series[0].Kind != KindRate {
		t.Fatalf("dump = %+v", d)
	}
	if tl.Points("missing") != nil {
		t.Fatal("missing series should read nil")
	}
}

func TestTimelineNilSafety(t *testing.T) {
	var tl *Timeline
	tl.Add("x", KindGauge, 0, 1)
	if tl.Points("x") != nil || tl.Names() != nil {
		t.Fatal("nil timeline reads should be empty")
	}
	var sb strings.Builder
	if err := tl.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var s *Sampler
	s.Watch("", metrics.New())
	s.Sample(0)
	if s.Timeline() != nil {
		t.Fatal("nil sampler timeline should be nil")
	}
}

func TestPointJSONRoundtrip(t *testing.T) {
	in := []Point{{T: 1_500_000, V: 0.75}, {T: 2_000_000, V: 42}}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "[[1500000,0.75],[2000000,42]]" {
		t.Fatalf("marshal = %s", b)
	}
	var out []Point
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("roundtrip = %+v", out)
	}
}

func TestSamplerCounterRates(t *testing.T) {
	reg := metrics.New()
	s := NewSampler(64)
	s.Watch("", reg)
	c := reg.Counter("ops_total")

	c.Add(10)
	s.Sample(1 * sim.Time(sim.Second)) // primes the diff base
	if pts := s.Timeline().Points("ops_total:rate"); pts != nil {
		t.Fatalf("priming sample emitted points: %+v", pts)
	}
	c.Add(20)
	s.Sample(3 * sim.Time(sim.Second)) // 20 increments over 2 s
	pts := s.Timeline().Points("ops_total:rate")
	if len(pts) != 1 || pts[0].V != 10 {
		t.Fatalf("rate points = %+v, want one point of 10/s", pts)
	}
	// Non-increasing sample instants are ignored.
	c.Add(100)
	s.Sample(3 * sim.Time(sim.Second))
	if pts := s.Timeline().Points("ops_total:rate"); len(pts) != 1 {
		t.Fatalf("zero-width window recorded a point: %+v", pts)
	}
}

func TestSamplerCounterReset(t *testing.T) {
	// Two registries sharing a prefix is how a reset reaches a sampler
	// in practice (a registry swap); simulate with watch order: prime on
	// a large value, then present a smaller one via a fresh registry.
	regA := metrics.New()
	regA.Counter("ops_total").Add(1000)
	s := NewSampler(64)
	s.Watch("", regA)
	s.Sample(1 * sim.Time(sim.Second))
	// The same watched registry can't shrink a Counter, but a gauge func
	// exporting a cumulative total can restart. Model the counter reset
	// through the gauge path and the histogram path below.
	regA.GaugeFunc("rpc_client_calls_total", func() float64 { return 50 })
	s.Sample(2 * sim.Time(sim.Second))
	// Prime saw no gauge; second sample creates it. Third sample shrinks.
	regA.GaugeFunc("rpc_client_calls_total", func() float64 { return 20 })
	s.Sample(3 * sim.Time(sim.Second))
	pts := s.Timeline().Points("rpc_client_calls_total:rate")
	if len(pts) != 2 {
		t.Fatalf("rate points = %+v, want 2", pts)
	}
	// After the reset the rate counts the post-reset value (20 over 1 s),
	// never a negative rate.
	if pts[1].V != 20 {
		t.Fatalf("post-reset rate = %g, want 20", pts[1].V)
	}
	for _, p := range pts {
		if p.V < 0 {
			t.Fatalf("negative rate %g after counter reset", p.V)
		}
	}
}

func TestSamplerGauges(t *testing.T) {
	reg := metrics.New()
	reg.Gauge("depth").Set(3)
	reg.GaugeFunc("cpu_busy_seconds", func() float64 { return 1.5 })
	s := NewSampler(64)
	s.Watch("", reg)
	s.Sample(0)
	reg.Gauge("depth").Set(5)
	s.Sample(2 * sim.Time(sim.Second))
	if pts := s.Timeline().Points("depth"); len(pts) != 1 || pts[0].V != 5 {
		t.Fatalf("gauge points = %+v", pts)
	}
	// A _seconds gauge also gets a rate series: 0 busy-seconds accrued
	// over the window → utilization 0.
	if pts := s.Timeline().Points("cpu_busy_seconds:rate"); len(pts) != 1 || pts[0].V != 0 {
		t.Fatalf("busy rate = %+v, want one 0 point", pts)
	}
	// Plain gauges get no rate series.
	if pts := s.Timeline().Points("depth:rate"); pts != nil {
		t.Fatalf("plain gauge grew a rate series: %+v", pts)
	}
}

func TestSamplerHistogramWindow(t *testing.T) {
	reg := metrics.New()
	h := reg.Histogram("lat_us")
	s := NewSampler(64)
	s.Watch("", reg)

	h.Observe(10)
	h.Observe(12)
	s.Sample(1 * sim.Time(sim.Second))
	// Window 1: only large samples arrive; windowed p50 must reflect
	// them, not the cumulative distribution.
	for i := 0; i < 100; i++ {
		h.Observe(10000)
	}
	s.Sample(2 * sim.Time(sim.Second))
	p50 := s.Timeline().Points("lat_us:p50")
	if len(p50) != 1 || p50[0].V < 4096 {
		t.Fatalf("windowed p50 = %+v, want >= 4096 (cumulative would be ~10)", p50)
	}
	if rate := s.Timeline().Points("lat_us:rate"); len(rate) != 1 || rate[0].V != 100 {
		t.Fatalf("hist rate = %+v, want 100/s", rate)
	}
	// Window 2 is empty: rate drops to 0 and no quantile point appears.
	s.Sample(3 * sim.Time(sim.Second))
	if rate := s.Timeline().Points("lat_us:rate"); len(rate) != 2 || rate[1].V != 0 {
		t.Fatalf("empty-window rate = %+v", rate)
	}
	if p50 = s.Timeline().Points("lat_us:p50"); len(p50) != 1 {
		t.Fatalf("empty window fabricated a quantile point: %+v", p50)
	}
	if p99 := s.Timeline().Points("lat_us:p99"); len(p99) != 1 {
		t.Fatalf("empty window fabricated a p99 point: %+v", p99)
	}
}

func TestSamplerPrefixes(t *testing.T) {
	a, b := metrics.New(), metrics.New()
	a.Counter("ops_total").Add(1)
	b.Counter("ops_total").Add(2)
	s := NewSampler(64)
	s.Watch("shard0/", a)
	s.Watch("shard1/", b)
	s.Sample(0)
	a.Counter("ops_total").Add(4)
	b.Counter("ops_total").Add(8)
	s.Sample(1 * sim.Time(sim.Second))
	if pts := s.Timeline().Points("shard0/ops_total:rate"); len(pts) != 1 || pts[0].V != 4 {
		t.Fatalf("shard0 rate = %+v", pts)
	}
	if pts := s.Timeline().Points("shard1/ops_total:rate"); len(pts) != 1 || pts[0].V != 8 {
		t.Fatalf("shard1 rate = %+v", pts)
	}
}

// TestConcurrentSampleAndRead hammers a sampler and its timeline from
// concurrent goroutines — the record-while-expose race test the -race CI
// job checks.
func TestConcurrentSampleAndRead(t *testing.T) {
	reg := metrics.New()
	s := NewSampler(128)
	s.Watch("", reg)
	c := reg.Counter("ops_total")
	h := reg.Histogram("lat_us")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	recorderDone := make(chan struct{})
	go func() { // recorder
		defer close(recorderDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Inc()
			h.Observe(int64(i % 1000))
		}
	}()
	wg.Add(1)
	go func() { // sampler
		defer wg.Done()
		for i := 1; i <= 500; i++ {
			s.Sample(sim.Time(i) * sim.Time(sim.Millisecond))
		}
	}()
	wg.Add(1)
	go func() { // exposer
		defer wg.Done()
		for i := 0; i < 200; i++ {
			var sb strings.Builder
			if err := s.Timeline().WriteJSON(&sb); err != nil {
				t.Error(err)
				return
			}
			s.Timeline().Points("ops_total:rate")
			s.Timeline().Names()
		}
	}()
	wg.Wait() // sampler and exposer finish; then stop the recorder
	close(stop)
	<-recorderDone
}

// TestTimelineSeriesBudget: LimitSeries caps distinct series — adds to
// new names beyond the budget are counted, not stored, while existing
// series keep recording.
func TestTimelineSeriesBudget(t *testing.T) {
	tl := NewTimeline(16)
	tl.LimitSeries(2)
	tl.Add("a", KindGauge, 1, 1)
	tl.Add("b", KindGauge, 1, 1)
	tl.Add("c", KindGauge, 1, 1) // over budget: dropped
	tl.Add("a", KindGauge, 2, 2) // existing: recorded
	if got := tl.Names(); len(got) != 2 {
		t.Fatalf("series = %v, want exactly [a b]", got)
	}
	if pts := tl.Points("a"); len(pts) != 2 {
		t.Errorf("existing series stopped recording: %d points, want 2", len(pts))
	}
	if tl.Points("c") != nil {
		t.Error("over-budget series was created")
	}
	if d := tl.DroppedSeries(); d != 1 {
		t.Errorf("DroppedSeries = %d, want 1", d)
	}
	if dump := tl.Dump(); dump.Dropped != 1 {
		t.Errorf("Dump.Dropped = %d, want 1", dump.Dropped)
	}
}

// TestSamplerSeriesBudget: a registry that grows per-entity labeled
// gauges (the per-client cardinality mistake) hits the sampler's budget
// instead of growing the timeline without bound.
func TestSamplerSeriesBudget(t *testing.T) {
	reg := metrics.New()
	s := NewSampler(8)
	s.LimitSeries(10)
	s.Watch("", reg)
	for i := 0; i < 100; i++ {
		v := float64(i)
		reg.GaugeFunc(fmt.Sprintf("g{client=%q}", fmt.Sprintf("c%03d", i)), func() float64 { return v })
	}
	s.Sample(sim.Time(sim.Second))
	s.Sample(2 * sim.Time(sim.Second))
	if n := len(s.Timeline().Names()); n > 10 {
		t.Errorf("timeline grew to %d series past the 10-series budget", n)
	}
	if s.Timeline().DroppedSeries() == 0 {
		t.Error("no drops recorded despite 100 candidate series")
	}
}
