package tsdb

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"spritelynfs/internal/sim"
)

// FlightEvent is one record in the flight recorder: an RPC served, a
// state-table transition, a callback, a crash — whatever the server
// deemed worth remembering. Op, when nonzero, is the causal operation ID
// (see sim.Proc.BeginOp), the key a post-mortem greps for.
type FlightEvent struct {
	Seq    int64    `json:"seq"`
	At     sim.Time `json:"at_us"`
	Host   string   `json:"host"`
	Kind   string   `json:"kind"`
	Op     uint64   `json:"op,omitempty"`
	Detail string   `json:"detail"`
}

func (e FlightEvent) String() string {
	op := ""
	if e.Op != 0 {
		op = fmt.Sprintf(" op=%d", e.Op)
	}
	return fmt.Sprintf("%12.6fs %-10s %-9s%s %s", e.At.Seconds(), e.Host, e.Kind, op, e.Detail)
}

// FlightRecorder is a black box: a bounded ring of recent events that is
// cheap enough to leave on in production paths and is dumped only when
// something goes wrong (audit violation, crash, operator signal).
//
// Unlike trace.Tracer — single-threaded, sized for full-run capture —
// the recorder is written from daemon worker goroutines concurrently
// with HTTP readers, so recording is lock-free: a slot index is claimed
// with one atomic add and the event is published with one atomic pointer
// store. Readers may observe a torn window (an old event already
// overwritten next to a new one); Events sorts by sequence so dumps stay
// chronological. A nil *FlightRecorder discards records.
type FlightRecorder struct {
	clock func() sim.Time
	slots []atomic.Pointer[FlightEvent]
	mask  int64
	seq   atomic.Int64
}

// NewFlightRecorder returns a recorder holding roughly the most recent
// capacity events (rounded up to a power of two; default 4096 if
// capacity <= 0), timestamping with clock.
func NewFlightRecorder(clock func() sim.Time, capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = 4096
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &FlightRecorder{clock: clock, slots: make([]atomic.Pointer[FlightEvent], size), mask: int64(size - 1)}
}

// Record appends one event; safe on a nil recorder and from any
// goroutine.
func (r *FlightRecorder) Record(host, kind string, op uint64, detail string) {
	if r == nil {
		return
	}
	e := &FlightEvent{
		Seq:    r.seq.Add(1) - 1,
		At:     r.clock(),
		Host:   host,
		Kind:   kind,
		Op:     op,
		Detail: detail,
	}
	r.slots[e.Seq&r.mask].Store(e)
}

// Recordf is Record with a format string. The fmt.Sprintf cost is paid
// even when the event is immediately overwritten; hot paths that care
// should preformat only under a nil check.
func (r *FlightRecorder) Recordf(host, kind string, op uint64, format string, args ...any) {
	if r == nil {
		return
	}
	r.Record(host, kind, op, fmt.Sprintf(format, args...))
}

// Total reports how many events were ever recorded.
func (r *FlightRecorder) Total() int64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Events returns the retained events sorted by sequence. Safe on a nil
// recorder and concurrent with recording.
func (r *FlightRecorder) Events() []FlightEvent {
	if r == nil {
		return nil
	}
	out := make([]FlightEvent, 0, len(r.slots))
	for i := range r.slots {
		if e := r.slots[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// FlightDump is the exported form — the schema of the /flight endpoint
// and of dump files.
type FlightDump struct {
	Total   int64         `json:"total"` // events ever recorded, incl. evicted
	Events  []FlightEvent `json:"events"`
	Trigger string        `json:"trigger,omitempty"` // what forced the dump
}

// Dump snapshots the recorder. Safe on a nil recorder.
func (r *FlightRecorder) Dump(trigger string) FlightDump {
	return FlightDump{Total: r.Total(), Events: r.Events(), Trigger: trigger}
}

// WriteJSON writes the retained events as indented JSON.
func (r *FlightRecorder) WriteJSON(w io.Writer, trigger string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r.Dump(trigger))
}

// WriteText writes the retained events one per line for humans, with a
// header naming the trigger. Safe on a nil recorder.
func (r *FlightRecorder) WriteText(w io.Writer, trigger string) {
	if r == nil {
		return
	}
	evs := r.Events()
	fmt.Fprintf(w, "=== flight recorder dump (%s): %d retained of %d recorded ===\n",
		trigger, len(evs), r.Total())
	for _, e := range evs {
		fmt.Fprintln(w, e)
	}
}
