// Package tsdb is the time-series layer of the observability plane: a
// periodic Sampler diffs metrics.Registry snapshots into fixed-capacity
// ring-buffer series (counter rates, gauge values, histogram quantiles
// per window), and a FlightRecorder keeps a bounded lock-cheap ring of
// recent protocol events for post-mortems.
//
// The same machinery serves two clocks. In simulation the harness runs
// the sampler as a sim process on the virtual clock and writes the rings
// out as timeline.json beside experiment results; in the standalone
// daemon a sampler ticks on the wall clock and the rings are served over
// HTTP (/timeline). Everything here is safe for concurrent use —
// samplers write while HTTP handlers read — and, like the trace and
// metrics layers, nil receivers are safe no-ops so instrumented code
// pays one nil check when observability is off.
package tsdb

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"spritelynfs/internal/sim"
)

// Point is one sample of one series.
type Point struct {
	T sim.Time // virtual (or daemon-relative wall) time of the sample
	V float64
}

// MarshalJSON renders the point as a compact [t_us, v] pair.
func (p Point) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("[%d,%g]", int64(p.T), p.V)), nil
}

// UnmarshalJSON parses the [t_us, v] pair form.
func (p *Point) UnmarshalJSON(b []byte) error {
	var pair [2]float64
	if err := json.Unmarshal(b, &pair); err != nil {
		return err
	}
	p.T = sim.Time(pair[0])
	p.V = pair[1]
	return nil
}

// Series kinds, stored so consumers know how to read the values.
const (
	KindRate  = "rate"  // per-second rate over the sampling window
	KindGauge = "gauge" // instantaneous value
	KindP50   = "p50"   // windowed median (microseconds for latency hists)
	KindP99   = "p99"   // windowed 99th percentile
)

// ring is one fixed-capacity series.
type ring struct {
	kind  string
	pts   []Point
	next  int
	total int64
}

func (r *ring) add(p Point) {
	r.total++
	if len(r.pts) < cap(r.pts) {
		r.pts = append(r.pts, p)
		return
	}
	r.pts[r.next] = p
	r.next = (r.next + 1) % len(r.pts)
}

func (r *ring) points() []Point {
	out := make([]Point, 0, len(r.pts))
	out = append(out, r.pts[r.next:]...)
	out = append(out, r.pts[:r.next]...)
	return out
}

// Timeline is a named collection of fixed-capacity series. A nil
// *Timeline discards adds and reads as empty.
type Timeline struct {
	mu       sync.RWMutex
	capacity int
	limit    int   // max distinct series; 0 = unlimited
	dropped  int64 // adds refused because the series budget was spent
	series   map[string]*ring
}

// NewTimeline returns a timeline whose series each hold the most recent
// capacity points (default 1024 if capacity <= 0).
func NewTimeline(capacity int) *Timeline {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Timeline{capacity: capacity, series: make(map[string]*ring)}
}

// LimitSeries caps the number of distinct series the timeline will
// create (0 = unlimited, the default). Adds to new names beyond the
// budget are counted in DroppedSeries instead of allocating — the guard
// that keeps a runaway label from growing the timeline with the client
// population. Existing series keep recording. Safe on a nil timeline.
func (t *Timeline) LimitSeries(max int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.limit = max
	t.mu.Unlock()
}

// DroppedSeries reports how many adds were refused because the series
// budget was exhausted. Safe on a nil timeline.
func (t *Timeline) DroppedSeries() int64 {
	if t == nil {
		return 0
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.dropped
}

// Add appends one point to the named series, creating it (with the given
// kind) on first use. Safe on a nil timeline.
func (t *Timeline) Add(name, kind string, at sim.Time, v float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	r, ok := t.series[name]
	if !ok {
		if t.limit > 0 && len(t.series) >= t.limit {
			t.dropped++
			t.mu.Unlock()
			return
		}
		r = &ring{kind: kind, pts: make([]Point, 0, t.capacity)}
		t.series[name] = r
	}
	r.add(Point{T: at, V: v})
	t.mu.Unlock()
}

// Names returns the series names, sorted. Safe on a nil timeline.
func (t *Timeline) Names() []string {
	if t == nil {
		return nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.series))
	for n := range t.series {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Points returns the retained points of one series in chronological
// order (nil if the series does not exist). Safe on a nil timeline.
func (t *Timeline) Points(name string) []Point {
	if t == nil {
		return nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	r, ok := t.series[name]
	if !ok {
		return nil
	}
	return r.points()
}

// SeriesDump is the exported form of one series.
type SeriesDump struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Total  int64   `json:"total"` // points ever recorded, incl. evicted
	Points []Point `json:"points"`
}

// TimelineDump is the exported form of a whole timeline — the schema of
// timeline.json and the /timeline endpoint.
type TimelineDump struct {
	Capacity int          `json:"capacity"`
	Dropped  int64        `json:"dropped_series,omitempty"`
	Series   []SeriesDump `json:"series"`
}

// Dump snapshots every series, sorted by name for deterministic output.
// Safe on a nil timeline.
func (t *Timeline) Dump() TimelineDump {
	if t == nil {
		return TimelineDump{}
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	d := TimelineDump{Capacity: t.capacity, Dropped: t.dropped, Series: make([]SeriesDump, 0, len(t.series))}
	for n, r := range t.series {
		d.Series = append(d.Series, SeriesDump{Name: n, Kind: r.kind, Total: r.total, Points: r.points()})
	}
	sort.Slice(d.Series, func(i, j int) bool { return d.Series[i].Name < d.Series[j].Name })
	return d
}

// WriteJSON writes the timeline as indented JSON. Safe on a nil
// timeline (writes an empty document).
func (t *Timeline) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t.Dump())
}
