package tsdb

import (
	"strings"
	"sync"

	"spritelynfs/internal/metrics"
	"spritelynfs/internal/sim"
)

// Sampler periodically diffs registry snapshots into timeline series:
//
//   - every counter yields a "<name>:rate" series (increments per second
//     over the window, tolerant of counter resets);
//   - every gauge yields a "<name>" value series, and gauges whose base
//     name ends in _total or _seconds (cumulative values exported as
//     gauge funcs — RPC totals, CPU/disk busy seconds) additionally
//     yield a "<name>:rate" series, which for busy-seconds gauges reads
//     directly as utilization;
//   - every histogram yields "<name>:rate" (observations per second)
//     plus "<name>:p50" and "<name>:p99" quantiles computed over the
//     window alone, not cumulatively — an empty window records no
//     quantile points rather than fabricating stale ones.
//
// A sampler may watch several registries (one per shard in cluster
// worlds), each under a distinguishing series prefix. Sample is driven
// by the caller's clock — a sim process in the harness, a ticker
// goroutine in snfsd — and is safe to call concurrently with timeline
// readers. A nil *Sampler ignores calls.
type Sampler struct {
	mu      sync.Mutex
	tl      *Timeline
	watched []*watchedReg
}

type watchedReg struct {
	prefix string
	reg    *metrics.Registry
	last   metrics.Snapshot
	lastAt sim.Time
	primed bool
}

// NewSampler returns a sampler recording into a fresh timeline whose
// series hold capacity points each (default 1024).
func NewSampler(capacity int) *Sampler {
	return &Sampler{tl: NewTimeline(capacity)}
}

// Watch adds a registry to the sample set; its series names are prefixed
// with prefix (use "" for a single-registry sampler). Safe on nil.
func (s *Sampler) Watch(prefix string, reg *metrics.Registry) {
	if s == nil || reg == nil {
		return
	}
	s.mu.Lock()
	s.watched = append(s.watched, &watchedReg{prefix: prefix, reg: reg})
	s.mu.Unlock()
}

// LimitSeries caps the sampler's timeline at max distinct series (see
// Timeline.LimitSeries). Safe on nil.
func (s *Sampler) LimitSeries(max int) {
	if s == nil {
		return
	}
	s.tl.LimitSeries(max)
}

// Timeline returns the sampler's timeline (nil for a nil sampler).
func (s *Sampler) Timeline() *Timeline {
	if s == nil {
		return nil
	}
	return s.tl
}

// cumulativeGauge reports whether a gauge series is a cumulative total
// in disguise (exported via GaugeFunc) and should get a rate series too.
func cumulativeGauge(name string) bool {
	base := name
	if i := strings.IndexByte(base, '{'); i >= 0 {
		base = base[:i]
	}
	return strings.HasSuffix(base, "_total") || strings.HasSuffix(base, "_seconds")
}

// Sample takes one sample at virtual (or wall-relative) instant at. The
// first call per registry only primes the diff base; rates appear from
// the second call on. Calls at non-increasing instants are ignored.
// Safe on a nil sampler.
func (s *Sampler) Sample(at sim.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range s.watched {
		snap := w.reg.Snapshot()
		if !w.primed {
			w.last, w.lastAt, w.primed = snap, at, true
			continue
		}
		dt := at.Sub(w.lastAt).Seconds()
		if dt <= 0 {
			continue
		}
		for name, cur := range snap.Counters {
			inc := cur - w.last.Counters[name]
			if inc < 0 {
				inc = cur // counter reset: count the post-reset value
			}
			s.tl.Add(w.prefix+name+":rate", KindRate, at, float64(inc)/dt)
		}
		for name, cur := range snap.Gauges {
			s.tl.Add(w.prefix+name, KindGauge, at, cur)
			if cumulativeGauge(name) {
				inc := cur - w.last.Gauges[name]
				if inc < 0 {
					inc = cur
				}
				s.tl.Add(w.prefix+name+":rate", KindRate, at, inc/dt)
			}
		}
		for name, cur := range snap.Hists {
			win := cur.Delta(w.last.Hists[name])
			s.tl.Add(w.prefix+name+":rate", KindRate, at, float64(win.Count)/dt)
			if win.Count > 0 {
				s.tl.Add(w.prefix+name+":p50", KindP50, at, win.Quantile(0.50))
				s.tl.Add(w.prefix+name+":p99", KindP99, at, win.Quantile(0.99))
			}
		}
		w.last, w.lastAt = snap, at
	}
}
