package tsdb

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"spritelynfs/internal/metrics"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/span"
)

func testPlane(t *testing.T) (http.Handler, *metrics.Registry, *Sampler, *FlightRecorder) {
	t.Helper()
	reg := metrics.New()
	smp := NewSampler(64)
	smp.Watch("", reg)
	fr := NewFlightRecorder(clockAt(5), 64)
	h := NewHandler(PlaneOptions{
		Registry: reg,
		Sampler:  smp,
		Flight:   fr,
		ShardMap: func() any { return map[string]int{"shards": 4} },
	})
	return h, reg, smp, fr
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

func TestPlaneEndpoints(t *testing.T) {
	h, reg, smp, fr := testPlane(t)
	reg.Counter("snfs_ops_total").Add(3)
	reg.Gauge("depth").Set(2)
	reg.Histogram("lat_us").Observe(100)
	smp.Sample(0)
	reg.Counter("snfs_ops_total").Add(7)
	smp.Sample(sim.Time(sim.Second))
	fr.Record("server", "rpc", 9, "read")

	rec := get(t, h, "/healthz")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("/healthz = %d %q", rec.Code, rec.Body.String())
	}

	rec = get(t, h, "/metrics")
	if rec.Code != 200 {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "snfs_ops_total 10") {
		t.Fatalf("/metrics missing counter:\n%s", rec.Body.String())
	}

	rec = get(t, h, "/vars")
	var vars Vars
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("/vars not JSON: %v", err)
	}
	if vars.Counters["snfs_ops_total"] != 10 || vars.Gauges["depth"] != 2 {
		t.Fatalf("/vars = %+v", vars)
	}
	if hv := vars.Histograms["lat_us"]; hv.Count != 1 || hv.Sum != 100 {
		t.Fatalf("/vars histogram = %+v", hv)
	}

	rec = get(t, h, "/timeline")
	var tld TimelineDump
	if err := json.Unmarshal(rec.Body.Bytes(), &tld); err != nil {
		t.Fatalf("/timeline not JSON: %v", err)
	}
	found := false
	for _, s := range tld.Series {
		if s.Name == "snfs_ops_total:rate" && len(s.Points) == 1 && s.Points[0].V == 7 {
			found = true
		}
	}
	if !found {
		t.Fatalf("/timeline missing rate series: %+v", tld.Series)
	}

	rec = get(t, h, "/flight")
	var fd FlightDump
	if err := json.Unmarshal(rec.Body.Bytes(), &fd); err != nil {
		t.Fatalf("/flight not JSON: %v", err)
	}
	if fd.Total != 1 || len(fd.Events) != 1 || fd.Events[0].Op != 9 {
		t.Fatalf("/flight = %+v", fd)
	}

	rec = get(t, h, "/shardmap")
	if !strings.Contains(rec.Body.String(), `"shards": 4`) {
		t.Fatalf("/shardmap = %q", rec.Body.String())
	}

	rec = get(t, h, "/debug/pprof/heap")
	if rec.Code != 200 {
		t.Fatalf("/debug/pprof/heap = %d", rec.Code)
	}
}

// TestPlaneNilBackends: a plane with nothing armed must still answer
// every endpoint with a well-formed document.
func TestPlaneNilBackends(t *testing.T) {
	h := NewHandler(PlaneOptions{})
	for _, path := range []string{"/metrics", "/healthz", "/vars", "/timeline", "/flight", "/shardmap", "/slowops"} {
		rec := get(t, h, path)
		if rec.Code != 200 {
			t.Fatalf("%s = %d with nil backends", path, rec.Code)
		}
	}
}

func TestPlaneUnhealthy(t *testing.T) {
	h := NewHandler(PlaneOptions{Healthy: func() bool { return false }})
	if rec := get(t, h, "/healthz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz = %d, want 503", rec.Code)
	}
}

// TestPlaneSlowOps drives one operation through a span recorder and reads
// it back through /slowops and /spans/<op>.
func TestPlaneSlowOps(t *testing.T) {
	k := sim.NewKernel(1)
	rec := span.NewRecorder(k.Now, 8)
	var op uint64
	k.Go("client", func(p *sim.Proc) {
		op = p.BeginOp()
		root := rec.Begin(p, "client", span.Syscall, "read")
		p.Sleep(10 * sim.Millisecond)
		root.End()
	})
	k.Run()
	h := NewHandler(PlaneOptions{Spans: rec})

	r := get(t, h, "/slowops")
	var sum span.Summary
	if err := json.Unmarshal(r.Body.Bytes(), &sum); err != nil {
		t.Fatalf("/slowops not JSON: %v", err)
	}
	if sum.Ops != 1 || len(sum.SlowOps) != 1 || sum.SlowOps[0].Op != op {
		t.Fatalf("/slowops = %+v", sum)
	}

	r = get(t, h, fmt.Sprintf("/spans/%d", op))
	var so span.SlowOp
	if err := json.Unmarshal(r.Body.Bytes(), &so); err != nil {
		t.Fatalf("/spans/%d not JSON: %v", op, err)
	}
	if so.Op != op || len(so.Spans) != 1 || so.DurUS != int64(10*sim.Millisecond) {
		t.Fatalf("/spans/%d = %+v", op, so)
	}

	if r = get(t, h, "/spans/999999"); r.Code != http.StatusNotFound {
		t.Fatalf("/spans/<missing> = %d, want 404", r.Code)
	}
	if r = get(t, h, "/spans/xyz"); r.Code != http.StatusBadRequest {
		t.Fatalf("/spans/xyz = %d, want 400", r.Code)
	}
}
