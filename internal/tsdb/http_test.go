package tsdb

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"spritelynfs/internal/metrics"
	"spritelynfs/internal/sim"
)

func testPlane(t *testing.T) (http.Handler, *metrics.Registry, *Sampler, *FlightRecorder) {
	t.Helper()
	reg := metrics.New()
	smp := NewSampler(64)
	smp.Watch("", reg)
	fr := NewFlightRecorder(clockAt(5), 64)
	h := NewHandler(PlaneOptions{
		Registry: reg,
		Sampler:  smp,
		Flight:   fr,
		ShardMap: func() any { return map[string]int{"shards": 4} },
	})
	return h, reg, smp, fr
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

func TestPlaneEndpoints(t *testing.T) {
	h, reg, smp, fr := testPlane(t)
	reg.Counter("snfs_ops_total").Add(3)
	reg.Gauge("depth").Set(2)
	reg.Histogram("lat_us").Observe(100)
	smp.Sample(0)
	reg.Counter("snfs_ops_total").Add(7)
	smp.Sample(sim.Time(sim.Second))
	fr.Record("server", "rpc", 9, "read")

	rec := get(t, h, "/healthz")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("/healthz = %d %q", rec.Code, rec.Body.String())
	}

	rec = get(t, h, "/metrics")
	if rec.Code != 200 {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "snfs_ops_total 10") {
		t.Fatalf("/metrics missing counter:\n%s", rec.Body.String())
	}

	rec = get(t, h, "/vars")
	var vars Vars
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("/vars not JSON: %v", err)
	}
	if vars.Counters["snfs_ops_total"] != 10 || vars.Gauges["depth"] != 2 {
		t.Fatalf("/vars = %+v", vars)
	}
	if hv := vars.Histograms["lat_us"]; hv.Count != 1 || hv.Sum != 100 {
		t.Fatalf("/vars histogram = %+v", hv)
	}

	rec = get(t, h, "/timeline")
	var tld TimelineDump
	if err := json.Unmarshal(rec.Body.Bytes(), &tld); err != nil {
		t.Fatalf("/timeline not JSON: %v", err)
	}
	found := false
	for _, s := range tld.Series {
		if s.Name == "snfs_ops_total:rate" && len(s.Points) == 1 && s.Points[0].V == 7 {
			found = true
		}
	}
	if !found {
		t.Fatalf("/timeline missing rate series: %+v", tld.Series)
	}

	rec = get(t, h, "/flight")
	var fd FlightDump
	if err := json.Unmarshal(rec.Body.Bytes(), &fd); err != nil {
		t.Fatalf("/flight not JSON: %v", err)
	}
	if fd.Total != 1 || len(fd.Events) != 1 || fd.Events[0].Op != 9 {
		t.Fatalf("/flight = %+v", fd)
	}

	rec = get(t, h, "/shardmap")
	if !strings.Contains(rec.Body.String(), `"shards": 4`) {
		t.Fatalf("/shardmap = %q", rec.Body.String())
	}

	rec = get(t, h, "/debug/pprof/heap")
	if rec.Code != 200 {
		t.Fatalf("/debug/pprof/heap = %d", rec.Code)
	}
}

// TestPlaneNilBackends: a plane with nothing armed must still answer
// every endpoint with a well-formed document.
func TestPlaneNilBackends(t *testing.T) {
	h := NewHandler(PlaneOptions{})
	for _, path := range []string{"/metrics", "/healthz", "/vars", "/timeline", "/flight", "/shardmap"} {
		rec := get(t, h, path)
		if rec.Code != 200 {
			t.Fatalf("%s = %d with nil backends", path, rec.Code)
		}
	}
}

func TestPlaneUnhealthy(t *testing.T) {
	h := NewHandler(PlaneOptions{Healthy: func() bool { return false }})
	if rec := get(t, h, "/healthz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz = %d, want 503", rec.Code)
	}
}
