package tsdb

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"spritelynfs/internal/metrics"
	"spritelynfs/internal/span"
)

// PlaneOptions configures the HTTP observability plane. Every field is
// optional: endpoints whose backing piece is nil serve an empty (but
// well-formed) document, so the plane can be mounted before all
// subsystems are armed.
type PlaneOptions struct {
	// Registry backs /metrics (Prometheus text) and /vars (JSON).
	Registry *metrics.Registry
	// Sampler backs /timeline.
	Sampler *Sampler
	// Flight backs /flight.
	Flight *FlightRecorder
	// ShardMap, when non-nil, is rendered as JSON at /shardmap (kept as
	// an opaque value so this package needs no protocol dependency).
	ShardMap func() any
	// View, when non-nil, is rendered as JSON at /view: per-shard view
	// number, primary, backup, and replication lag (opaque for the same
	// reason as ShardMap).
	View func() any
	// Spans backs /slowops (the live critical-path breakdown plus the
	// top-K capture) and /spans/<op> (one captured tree by causal op ID).
	Spans *span.Recorder
	// Healthy, when non-nil, gates /healthz; a nil func means always
	// healthy once the plane is up.
	Healthy func() bool
}

// NewHandler builds the observability plane: /metrics, /healthz, /vars,
// /timeline, /flight, /shardmap, and the net/http/pprof endpoints under
// /debug/pprof/. The handlers are registered on a private mux — nothing
// leaks into http.DefaultServeMux.
func NewHandler(opt PlaneOptions) http.Handler {
	mux := http.NewServeMux()

	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(v)
	}

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		opt.Registry.WriteProm(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if opt.Healthy != nil && !opt.Healthy() {
			http.Error(w, "unhealthy", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, varsDoc(opt.Registry.Snapshot()))
	})
	mux.HandleFunc("/timeline", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, opt.Sampler.Timeline().Dump())
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, opt.Flight.Dump("http"))
	})
	mux.HandleFunc("/shardmap", func(w http.ResponseWriter, r *http.Request) {
		if opt.ShardMap == nil {
			writeJSON(w, nil)
			return
		}
		writeJSON(w, opt.ShardMap())
	})
	mux.HandleFunc("/view", func(w http.ResponseWriter, r *http.Request) {
		if opt.View == nil {
			writeJSON(w, nil)
			return
		}
		writeJSON(w, opt.View())
	})
	mux.HandleFunc("/slowops", func(w http.ResponseWriter, r *http.Request) {
		// Elapsed 0 = the recorder's own observed window; the daemon does
		// not know the client count, so wall time is per-client.
		s := opt.Spans.Summarize(0, 1)
		if s == nil {
			s = &span.Summary{}
		}
		writeJSON(w, s)
	})
	mux.HandleFunc("/spans/", func(w http.ResponseWriter, r *http.Request) {
		raw := strings.TrimPrefix(r.URL.Path, "/spans/")
		op, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			http.Error(w, "bad op id", http.StatusBadRequest)
			return
		}
		so, ok := opt.Spans.Lookup(op)
		if !ok {
			http.Error(w, "op not captured", http.StatusNotFound)
			return
		}
		writeJSON(w, so)
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// HistVar is the /vars rendering of a histogram: the summary numbers a
// watch display wants, not raw buckets.
type HistVar struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Max   int64   `json:"max"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
}

// Vars is the /vars document schema.
type Vars struct {
	Counters   map[string]int64   `json:"counters"`
	Gauges     map[string]float64 `json:"gauges"`
	Histograms map[string]HistVar `json:"histograms"`
}

// varsDoc converts a registry snapshot into the /vars form.
func varsDoc(s metrics.Snapshot) Vars {
	v := Vars{Counters: s.Counters, Gauges: s.Gauges, Histograms: map[string]HistVar{}}
	for n, h := range s.Hists {
		v.Histograms[n] = HistVar{
			Count: h.Count, Sum: h.Sum, Max: h.Max,
			P50: h.Quantile(0.50), P99: h.Quantile(0.99),
		}
	}
	return v
}
