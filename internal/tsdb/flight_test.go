package tsdb

import (
	"strings"
	"sync"
	"testing"

	"spritelynfs/internal/sim"
)

func clockAt(t sim.Time) func() sim.Time { return func() sim.Time { return t } }

func TestFlightRecorderRing(t *testing.T) {
	r := NewFlightRecorder(clockAt(42), 4)
	for i := 0; i < 10; i++ {
		r.Recordf("server", "rpc", uint64(i+1), "call %d", i)
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d", r.Total())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4 (capacity)", len(evs))
	}
	for i, e := range evs {
		if want := int64(6 + i); e.Seq != want {
			t.Fatalf("event %d seq %d, want %d (oldest evicted, order kept)", i, e.Seq, want)
		}
	}
	if evs[0].Op != 7 || evs[0].Host != "server" || evs[0].Kind != "rpc" {
		t.Fatalf("event fields = %+v", evs[0])
	}
}

func TestFlightRecorderCapacityRounding(t *testing.T) {
	r := NewFlightRecorder(clockAt(0), 5) // rounds up to 8
	for i := 0; i < 8; i++ {
		r.Record("h", "k", 0, "x")
	}
	if got := len(r.Events()); got != 8 {
		t.Fatalf("retained %d, want 8 (power-of-two rounding)", got)
	}
	if def := NewFlightRecorder(clockAt(0), 0); len(def.slots) != 4096 {
		t.Fatalf("default capacity = %d, want 4096", len(def.slots))
	}
}

func TestFlightRecorderNilSafety(t *testing.T) {
	var r *FlightRecorder
	r.Record("h", "k", 1, "d")
	r.Recordf("h", "k", 1, "d%d", 1)
	if r.Total() != 0 || r.Events() != nil {
		t.Fatal("nil recorder should be empty")
	}
	var sb strings.Builder
	r.WriteText(&sb, "test")
	if sb.Len() != 0 {
		t.Fatal("nil recorder text dump should write nothing")
	}
	if d := r.Dump("x"); d.Total != 0 || len(d.Events) != 0 {
		t.Fatalf("nil dump = %+v", d)
	}
}

func TestFlightRecorderDumps(t *testing.T) {
	r := NewFlightRecorder(clockAt(1_000_000), 8)
	r.Record("server", "violation", 77, "stale read")
	var txt strings.Builder
	r.WriteText(&txt, "audit violation")
	out := txt.String()
	for _, want := range []string{"audit violation", "1 retained of 1", "op=77", "stale read"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text dump missing %q:\n%s", want, out)
		}
	}
	var js strings.Builder
	if err := r.WriteJSON(&js, "signal"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"trigger": "signal"`, `"op": 77`, `"host": "server"`} {
		if !strings.Contains(js.String(), want) {
			t.Fatalf("json dump missing %q:\n%s", want, js.String())
		}
	}
}

// TestFlightRecorderConcurrent is the lock-free path under -race: many
// recorders write while readers drain; the ring must stay well-formed
// (sorted, bounded) with no torn events.
func TestFlightRecorderConcurrent(t *testing.T) {
	r := NewFlightRecorder(clockAt(0), 256)
	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Recordf("h", "rpc", uint64(id), "w%d i%d", id, i)
			}
		}(w)
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for i := 0; i < 100; i++ {
			evs := r.Events()
			if len(evs) > 256 {
				t.Errorf("reader saw %d events, capacity 256", len(evs))
				return
			}
			for j := 1; j < len(evs); j++ {
				if evs[j].Seq <= evs[j-1].Seq {
					t.Errorf("events out of order: %d then %d", evs[j-1].Seq, evs[j].Seq)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-readerDone
	if r.Total() != writers*perWriter {
		t.Fatalf("total = %d, want %d", r.Total(), writers*perWriter)
	}
	evs := r.Events()
	if len(evs) != 256 {
		t.Fatalf("retained %d, want full ring of 256", len(evs))
	}
}
