package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("ops_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if c2 := r.Counter("ops_total"); c2 != c {
		t.Fatalf("same name returned a different counter")
	}
	g := r.Gauge("depth")
	g.Set(3.5)
	g.Add(-1.5)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %g, want 2", got)
	}
	if v, ok := r.ReadGauge("depth"); !ok || v != 2 {
		t.Fatalf("ReadGauge = %g,%v", v, ok)
	}
	r.GaugeFunc("fn_gauge", func() float64 { return 42 })
	if v, ok := r.ReadGauge("fn_gauge"); !ok || v != 42 {
		t.Fatalf("ReadGauge(fn) = %g,%v", v, ok)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter should read 0")
	}
	g := r.Gauge("y")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge should read 0")
	}
	h := r.Histogram("z")
	h.Observe(7)
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram should read 0")
	}
	h.Merge(nil)
	r.GaugeFunc("f", func() float64 { return 1 })
	if _, ok := r.ReadGauge("f"); ok {
		t.Fatal("nil registry should not have gauges")
	}
	if r.FindHistogram("z") != nil || r.HistogramNames() != nil {
		t.Fatal("nil registry lookups should be empty")
	}
	var sb strings.Builder
	r.WriteProm(&sb)
	if sb.Len() != 0 {
		t.Fatal("nil registry exposition should be empty")
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 100, 1000, 1000, 1000000} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 1000000 {
		t.Fatalf("max = %d", h.Max())
	}
	if h.Sum() != 0+1+2+3+100+1000+1000+1000000 {
		t.Fatalf("sum = %d", h.Sum())
	}
	// p50 of 8 samples lands around the 4th (value 3): the estimate must
	// stay within that sample's bucket [2,3].
	if p := h.Quantile(0.5); p < 2 || p > 3 {
		t.Fatalf("p50 = %g, want within [2,3]", p)
	}
	// Quantiles must be monotone in q and capped at max.
	prev := -1.0
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%g: %g < %g", q, v, prev)
		}
		if v > float64(h.Max()) {
			t.Fatalf("quantile %g exceeds max", v)
		}
		prev = v
	}
	if h.Quantile(1) != float64(h.Max()) {
		t.Fatalf("p100 = %g, want max %d", h.Quantile(1), h.Max())
	}
	// Negative samples clamp to zero rather than corrupting buckets.
	h.Observe(-5)
	if h.Quantile(0) < 0 {
		t.Fatal("negative quantile")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := int64(1); i <= 100; i++ {
		a.Observe(i)
	}
	for i := int64(1000); i <= 1100; i++ {
		b.Observe(i)
	}
	a.Merge(&b)
	if a.Count() != 201 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Max() != 1100 {
		t.Fatalf("merged max = %d", a.Max())
	}
	// Snapshot merge agrees with histogram merge.
	var s HistSnapshot
	s.Merge(b.Snapshot())
	if s.Count != 101 || s.Max != 1100 {
		t.Fatalf("snapshot merge = %+v", s)
	}
}

func TestLabel(t *testing.T) {
	if got := Label("x_us"); got != "x_us" {
		t.Fatalf("no-label = %q", got)
	}
	if got := Label("x_us", "proc", "read"); got != `x_us{proc="read"}` {
		t.Fatalf("one label = %q", got)
	}
	if got := Label("x_us", "proc", "read", "host", "c1"); got != `x_us{proc="read",host="c1"}` {
		t.Fatalf("two labels = %q", got)
	}
}

func TestWriteProm(t *testing.T) {
	r := New()
	r.Counter("snfs_ops_total").Add(7)
	r.Gauge("snfs_depth").Set(2)
	r.GaugeFunc("snfs_table_size", func() float64 { return 11 })
	h := r.Histogram(Label("snfs_lat_us", "proc", "read"))
	h.Observe(3)
	h.Observe(300)
	var sb strings.Builder
	r.WriteProm(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE snfs_ops_total counter",
		"snfs_ops_total 7",
		"snfs_depth 2",
		"snfs_table_size 11",
		"# TYPE snfs_lat_us histogram",
		`snfs_lat_us_bucket{proc="read",le="3"} 1`,
		`snfs_lat_us_bucket{proc="read",le="+Inf"} 2`,
		`snfs_lat_us_sum{proc="read"} 303`,
		`snfs_lat_us_count{proc="read"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Deterministic: two expositions are identical.
	var sb2 strings.Builder
	r.WriteProm(&sb2)
	if sb2.String() != out {
		t.Fatal("exposition is not deterministic")
	}
}

// TestConcurrentWriters hammers one registry from many goroutines while
// exposition runs — the -race CI job checks the synchronization.
func TestConcurrentWriters(t *testing.T) {
	r := New()
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := r.Counter("c_total")
			g := r.Gauge("g")
			h := r.Histogram("h_us")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i%1000 + id))
				if i%100 == 0 {
					// Metric creation racing with use.
					r.Histogram("h_us").Observe(int64(i))
					r.GaugeFunc("fn", func() float64 { return float64(i) })
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			r.WriteProm(&sb)
		}
	}()
	wg.Wait()
	<-done
	if got := r.Counter("c_total").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	wantObs := int64(workers * (perWorker + perWorker/100))
	if got := r.Histogram("h_us").Count(); got != wantObs {
		t.Fatalf("histogram count = %d, want %d", got, wantObs)
	}
}
