package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("ops_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if c2 := r.Counter("ops_total"); c2 != c {
		t.Fatalf("same name returned a different counter")
	}
	g := r.Gauge("depth")
	g.Set(3.5)
	g.Add(-1.5)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %g, want 2", got)
	}
	if v, ok := r.ReadGauge("depth"); !ok || v != 2 {
		t.Fatalf("ReadGauge = %g,%v", v, ok)
	}
	r.GaugeFunc("fn_gauge", func() float64 { return 42 })
	if v, ok := r.ReadGauge("fn_gauge"); !ok || v != 42 {
		t.Fatalf("ReadGauge(fn) = %g,%v", v, ok)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter should read 0")
	}
	g := r.Gauge("y")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge should read 0")
	}
	h := r.Histogram("z")
	h.Observe(7)
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram should read 0")
	}
	h.Merge(nil)
	r.GaugeFunc("f", func() float64 { return 1 })
	if _, ok := r.ReadGauge("f"); ok {
		t.Fatal("nil registry should not have gauges")
	}
	if r.FindHistogram("z") != nil || r.HistogramNames() != nil {
		t.Fatal("nil registry lookups should be empty")
	}
	var sb strings.Builder
	r.WriteProm(&sb)
	if sb.Len() != 0 {
		t.Fatal("nil registry exposition should be empty")
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 100, 1000, 1000, 1000000} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 1000000 {
		t.Fatalf("max = %d", h.Max())
	}
	if h.Sum() != 0+1+2+3+100+1000+1000+1000000 {
		t.Fatalf("sum = %d", h.Sum())
	}
	// p50 of 8 samples lands around the 4th (value 3): the estimate must
	// stay within that sample's bucket [2,3].
	if p := h.Quantile(0.5); p < 2 || p > 3 {
		t.Fatalf("p50 = %g, want within [2,3]", p)
	}
	// Quantiles must be monotone in q and capped at max.
	prev := -1.0
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%g: %g < %g", q, v, prev)
		}
		if v > float64(h.Max()) {
			t.Fatalf("quantile %g exceeds max", v)
		}
		prev = v
	}
	if h.Quantile(1) != float64(h.Max()) {
		t.Fatalf("p100 = %g, want max %d", h.Quantile(1), h.Max())
	}
	// Negative samples clamp to zero rather than corrupting buckets.
	h.Observe(-5)
	if h.Quantile(0) < 0 {
		t.Fatal("negative quantile")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := int64(1); i <= 100; i++ {
		a.Observe(i)
	}
	for i := int64(1000); i <= 1100; i++ {
		b.Observe(i)
	}
	a.Merge(&b)
	if a.Count() != 201 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Max() != 1100 {
		t.Fatalf("merged max = %d", a.Max())
	}
	// Snapshot merge agrees with histogram merge.
	var s HistSnapshot
	s.Merge(b.Snapshot())
	if s.Count != 101 || s.Max != 1100 {
		t.Fatalf("snapshot merge = %+v", s)
	}
}

func TestLabel(t *testing.T) {
	if got := Label("x_us"); got != "x_us" {
		t.Fatalf("no-label = %q", got)
	}
	if got := Label("x_us", "proc", "read"); got != `x_us{proc="read"}` {
		t.Fatalf("one label = %q", got)
	}
	if got := Label("x_us", "proc", "read", "host", "c1"); got != `x_us{proc="read",host="c1"}` {
		t.Fatalf("two labels = %q", got)
	}
}

func TestWriteProm(t *testing.T) {
	r := New()
	r.Counter("snfs_ops_total").Add(7)
	r.Help("snfs_ops_total", "Total operations served.")
	r.Gauge("snfs_depth").Set(2)
	r.GaugeFunc("snfs_table_size", func() float64 { return 11 })
	h := r.Histogram(Label("snfs_lat_us", "proc", "read"))
	r.Help(Label("snfs_lat_us", "proc", "read"), "Latency in microseconds.")
	h.Observe(3)
	h.Observe(300)
	var sb strings.Builder
	r.WriteProm(&sb)
	out := sb.String()
	for _, want := range []string{
		"# HELP snfs_ops_total Total operations served.",
		"# TYPE snfs_ops_total counter",
		"snfs_ops_total 7",
		"snfs_depth 2",
		"snfs_table_size 11",
		"# HELP snfs_lat_us Latency in microseconds.",
		"# TYPE snfs_lat_us histogram",
		`snfs_lat_us_bucket{proc="read",le="3"} 1`,
		`snfs_lat_us_bucket{proc="read",le="+Inf"} 2`,
		`snfs_lat_us_sum{proc="read"} 303`,
		`snfs_lat_us_count{proc="read"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Deterministic: two expositions are identical.
	var sb2 strings.Builder
	r.WriteProm(&sb2)
	if sb2.String() != out {
		t.Fatal("exposition is not deterministic")
	}
}

// TestWritePromFormat asserts the exposition is structurally scrapeable:
// every non-comment line is `name[{labels}] value`, each family's samples
// are contiguous, and # HELP/# TYPE precede the family's first sample.
func TestWritePromFormat(t *testing.T) {
	r := New()
	r.Counter("a_total").Add(1)
	r.Help("a_total", "A counter.")
	r.Gauge(Label("b_gauge", "host", "s0")).Set(1.5)
	r.Gauge(Label("b_gauge", "host", "s1")).Set(2.5)
	r.Histogram("c_us").Observe(10)
	var sb strings.Builder
	r.WriteProm(&sb)

	seen := map[string]bool{}      // families that have emitted samples
	commented := map[string]bool{} // families with # TYPE already out
	var last string
	for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) < 4 {
				t.Fatalf("malformed metadata line %q", line)
			}
			base := fields[2]
			if strings.HasPrefix(line, "# TYPE ") {
				switch fields[3] {
				case "counter", "gauge", "histogram":
				default:
					t.Fatalf("bad type %q in %q", fields[3], line)
				}
				if seen[base] {
					t.Fatalf("# TYPE for %s appears after its samples", base)
				}
				commented[base] = true
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // quantile summaries for humans
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		if name == "" || val == "" {
			t.Fatalf("malformed sample %q", line)
		}
		if i := strings.IndexByte(name, '{'); i >= 0 && !strings.HasSuffix(name, "}") {
			t.Fatalf("unterminated label block in %q", name)
		}
		base := baseOf(name)
		// Histogram series carry _bucket/_sum/_count suffixes; map them
		// back to the family that owns the # TYPE line.
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if trimmed, ok := strings.CutSuffix(base, suf); ok && commented[trimmed] {
				base = trimmed
				break
			}
		}
		if !commented[base] {
			t.Fatalf("sample %q precedes its # TYPE line", line)
		}
		if seen[base] && last != base {
			t.Fatalf("family %s is not contiguous", base)
		}
		seen[base] = true
		last = base
	}
	for _, base := range []string{"a_total", "b_gauge", "c_us"} {
		if !seen[base] {
			t.Fatalf("family %s missing from exposition", base)
		}
	}
}

func TestSnapshot(t *testing.T) {
	r := New()
	r.Counter("ops_total").Add(3)
	r.Gauge("depth").Set(7)
	r.GaugeFunc("fn", func() float64 { return 9 })
	r.Histogram("lat_us").Observe(100)
	s := r.Snapshot()
	if s.Counters["ops_total"] != 3 {
		t.Fatalf("snapshot counter = %d", s.Counters["ops_total"])
	}
	if s.Gauges["depth"] != 7 || s.Gauges["fn"] != 9 {
		t.Fatalf("snapshot gauges = %v", s.Gauges)
	}
	if h := s.Hists["lat_us"]; h.Count != 1 || h.Sum != 100 {
		t.Fatalf("snapshot hist = %+v", s.Hists["lat_us"])
	}
	// Snapshots are copies: later recording must not alter them.
	r.Counter("ops_total").Add(5)
	if s.Counters["ops_total"] != 3 {
		t.Fatal("snapshot aliased live counter")
	}
	var nilReg *Registry
	ns := nilReg.Snapshot()
	if len(ns.Counters) != 0 || len(ns.Gauges) != 0 || len(ns.Hists) != 0 {
		t.Fatal("nil registry snapshot should be empty")
	}
}

func TestHistSnapshotDelta(t *testing.T) {
	var h Histogram
	h.Observe(10)
	h.Observe(20)
	prev := h.Snapshot()
	h.Observe(1000)
	h.Observe(2000)
	d := h.Snapshot().Delta(prev)
	if d.Count != 2 || d.Sum != 3000 {
		t.Fatalf("delta = count %d sum %d, want 2/3000", d.Count, d.Sum)
	}
	// The window holds only the large samples, so its p50 must sit far
	// above the all-time p50.
	if p := d.Quantile(0.5); p < 512 {
		t.Fatalf("window p50 = %g, want >= 512", p)
	}
	// Empty window: identical snapshots diff to zero and quote 0.
	same := h.Snapshot()
	e := same.Delta(same)
	if e.Count != 0 || e.Quantile(0.5) != 0 || e.Quantile(0.99) != 0 {
		t.Fatalf("empty window = %+v, q50=%g", e, e.Quantile(0.5))
	}
	// Counter reset: a fresh histogram's snapshot has smaller buckets
	// than prev; Delta must fall back to the current snapshot whole.
	var fresh Histogram
	fresh.Observe(5)
	f := fresh.Snapshot().Delta(prev)
	if f.Count != 1 || f.Sum != 5 {
		t.Fatalf("reset delta = %+v, want the fresh snapshot", f)
	}
}

// TestConcurrentWriters hammers one registry from many goroutines while
// exposition runs — the -race CI job checks the synchronization.
func TestConcurrentWriters(t *testing.T) {
	r := New()
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := r.Counter("c_total")
			g := r.Gauge("g")
			h := r.Histogram("h_us")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i%1000 + id))
				if i%100 == 0 {
					// Metric creation racing with use.
					r.Histogram("h_us").Observe(int64(i))
					r.GaugeFunc("fn", func() float64 { return float64(i) })
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			r.WriteProm(&sb)
		}
	}()
	wg.Wait()
	<-done
	if got := r.Counter("c_total").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	wantObs := int64(workers * (perWorker + perWorker/100))
	if got := r.Histogram("h_us").Count(); got != wantObs {
		t.Fatalf("histogram count = %d, want %d", got, wantObs)
	}
}

// TestExemplars checks ObserveOp stamps the op ID on exactly the bucket
// the sample lands in, that zero ops never stamp (keeping span-off output
// byte-identical), and that WriteProm carries the exemplar suffix.
func TestExemplars(t *testing.T) {
	var h Histogram
	h.ObserveOp(1500, 0) // spans off: no exemplar recorded
	for i := range h.exemplars {
		if h.exemplars[i].Load() != 0 {
			t.Fatalf("op=0 stamped bucket %d", i)
		}
	}
	h.ObserveOp(1500, 42)
	b := BucketOf(1500)
	if got := h.Exemplar(b); got != 42 {
		t.Fatalf("Exemplar(%d) = %d, want 42", b, got)
	}
	for i := range h.exemplars {
		if i != b && h.exemplars[i].Load() != 0 {
			t.Fatalf("stray exemplar in bucket %d", i)
		}
	}
	// A later sample in the same bucket wins (recency is the point:
	// the exemplar should link to an op the capture may still hold).
	h.ObserveOp(1600, 99)
	if BucketOf(1600) != b {
		t.Fatalf("test assumption broken: 1500 and 1600 straddle buckets")
	}
	if got := h.Exemplar(b); got != 99 {
		t.Fatalf("Exemplar(%d) = %d, want the later op 99", b, got)
	}

	r := New()
	rh := r.Histogram("lat_us")
	rh.ObserveOp(1500, 7)
	var sb strings.Builder
	r.WriteProm(&sb)
	if !strings.Contains(sb.String(), `# {op="7"}`) {
		t.Fatalf("WriteProm missing exemplar suffix:\n%s", sb.String())
	}
	// And without ops, no exemplar syntax at all.
	r2 := New()
	r2.Histogram("lat_us").Observe(1500)
	sb.Reset()
	r2.WriteProm(&sb)
	if strings.Contains(sb.String(), "# {op=") {
		t.Fatalf("plain Observe leaked exemplar syntax:\n%s", sb.String())
	}
}

// TestExemplarsConcurrent hammers ObserveOp from several goroutines under
// the race detector; the exemplar slots are atomics.
func TestExemplarsConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.ObserveOp(int64(i), uint64(g*1000+i+1))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("count = %d, want 4000", h.Count())
	}
	if h.Exemplar(BucketOf(500)) == 0 {
		t.Fatal("no exemplar recorded in a hot bucket")
	}
}
