// Package metrics is the measurement layer beneath the paper's evaluation
// machinery: counters, gauges, and log-bucketed latency histograms that
// the RPC, server, and client layers record into, plus a Prometheus-style
// text exposition for daemons and the harness.
//
// Like trace.Tracer, every type is nil-safe: recording to a nil *Counter,
// *Gauge, *Histogram, or *Registry is a no-op costing one nil check, so
// instrumented hot paths pay nothing when metrics are off.
//
// Unlike the sim-kernel structures, everything here is safe for concurrent
// use: the standalone daemon exposes metrics from goroutines outside the
// simulation kernel, and exposition may run while workers record.
package metrics

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one; safe on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n; safe on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v; safe on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by d; safe on a nil gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		val := math.Float64frombits(old) + d
		if g.bits.CompareAndSwap(old, math.Float64bits(val)) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the number of power-of-two buckets. Bucket i holds
// values whose bit length is i — the range [2^(i-1), 2^i-1] — with bucket
// 0 holding exact zeros. 48 buckets cover 2^47 µs ≈ 4.5 simulated years.
const histBuckets = 48

// Histogram is a log2-bucketed distribution of int64 samples (we record
// latencies in microseconds). Observations and reads are lock-free.
//
// Each bucket can also carry an exemplar: the causal op ID of a recent
// sample that landed there (see ObserveOp), linking a latency bucket —
// say, the one holding the p99 — straight to that operation's captured
// span tree. Zero means "no exemplar".
type Histogram struct {
	counts    [histBuckets + 1]atomic.Int64
	count     atomic.Int64
	sum       atomic.Int64
	max       atomic.Int64
	exemplars [histBuckets + 1]atomic.Uint64
}

// bucketOf maps a sample to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b > histBuckets {
		b = histBuckets
	}
	return b
}

// bucketBounds returns the inclusive value range of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i <= 0 {
		return 0, 0
	}
	return 1 << (i - 1), 1<<i - 1
}

// Observe records one sample; safe on a nil histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// ObserveOp records one sample and, when op is nonzero, stamps it as the
// sample's bucket exemplar (last writer wins — "a recent sample", not
// "the slowest"). Safe on a nil histogram.
func (h *Histogram) ObserveOp(v int64, op uint64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	if op != 0 {
		h.exemplars[bucketOf(v)].Store(op)
	}
	h.Observe(v)
}

// Exemplar returns the op ID last recorded into bucket i (0 if none).
func (h *Histogram) Exemplar(i int) uint64 {
	if h == nil || i < 0 || i > histBuckets {
		return 0
	}
	return h.exemplars[i].Load()
}

// BucketOf exposes the bucket index a sample lands in (for tests and
// exemplar consumers).
func BucketOf(v int64) int { return bucketOf(v) }

// Count returns the number of samples (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all samples (0 for nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest sample (0 for nil or empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Mean returns the average sample (0 for nil or empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation
// within the containing bucket. Safe on a nil histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return h.Snapshot().Quantile(q)
}

// Merge adds every sample recorded in o into h (both may be nil).
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	s := o.Snapshot()
	for i, c := range s.Counts {
		if c > 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(s.Count)
	h.sum.Add(s.Sum)
	for {
		old := h.max.Load()
		if s.Max <= old || h.max.CompareAndSwap(old, s.Max) {
			break
		}
	}
}

// HistSnapshot is a point-in-time copy of a histogram, suitable for
// merging and rendering without further synchronization.
type HistSnapshot struct {
	Counts [histBuckets + 1]int64
	Count  int64
	Sum    int64
	Max    int64
	// Exemplars carries per-bucket op IDs (see ObserveOp); kept out of
	// the JSON form so /vars output is unchanged when spans are off.
	Exemplars [histBuckets + 1]uint64 `json:"-"`
}

// Snapshot copies the histogram's current state (zero value for nil).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Exemplars[i] = h.exemplars[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// Delta returns the samples recorded between prev and s — the window a
// periodic sampler quotes quantiles over. If any bucket shrank (a
// counter reset: the histogram was replaced or zeroed between
// snapshots), s itself is returned, treating everything current as new.
// The window's Max is inherited from s: the true window maximum is not
// recoverable from bucket counts, so quantiles are clamped by the
// all-time max instead.
func (s HistSnapshot) Delta(prev HistSnapshot) HistSnapshot {
	var d HistSnapshot
	for i := range s.Counts {
		c := s.Counts[i] - prev.Counts[i]
		if c < 0 {
			return s
		}
		d.Counts[i] = c
	}
	if s.Count < prev.Count || s.Sum < prev.Sum {
		return s
	}
	d.Count = s.Count - prev.Count
	d.Sum = s.Sum - prev.Sum
	d.Max = s.Max
	return d
}

// Merge accumulates o into s.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Quantile estimates the q-th quantile of the snapshot.
func (s HistSnapshot) Quantile(q float64) float64 {
	var total int64
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q >= 1 {
		return float64(s.Max)
	}
	if q < 0 {
		q = 0
	}
	target := q * float64(total)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			lo, hi := bucketBounds(i)
			top := float64(hi)
			if float64(s.Max) < top {
				top = float64(s.Max) // the bucket can't exceed the observed max
			}
			frac := 0.0
			if c > 0 {
				frac = (target - cum) / float64(c)
			}
			return float64(lo) + frac*(top-float64(lo))
		}
		cum = next
	}
	return float64(s.Max)
}

// Registry is a named collection of metrics. The zero value is not usable;
// create with New. A nil *Registry hands out nil metrics, which are safe
// to record to — the disabled configuration costs one nil check per site.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() float64
	hists    map[string]*Histogram
	helps    map[string]string
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]func() float64),
		hists:    make(map[string]*Histogram),
		helps:    make(map[string]string),
	}
}

// Help registers a human-readable description for a metric base name
// (labels are ignored); it is emitted as a # HELP line by WriteProm.
func (r *Registry) Help(name, text string) {
	if r == nil || text == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.helps[baseOf(name)] = text
}

// Counter returns (creating if needed) the counter with the given name.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge with the given name.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers fn as the source for a gauge read at exposition
// time (state-table sizes, cache occupancy — values that already live in
// the instrumented structure). Re-registering a name replaces the source.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = fn
}

// Histogram returns (creating if needed) the histogram with the given
// name.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// FindHistogram returns the named histogram if it exists, else nil (which
// is safe to query).
func (r *Registry) FindHistogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hists[name]
}

// ReadGauge reads a set or registered gauge by name.
func (r *Registry) ReadGauge(name string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	g, gok := r.gauges[name]
	fn, fok := r.gaugeFns[name]
	r.mu.Unlock()
	if fok {
		return fn(), true
	}
	if gok {
		return g.Value(), true
	}
	return 0, false
}

// HistogramNames returns the registered histogram names, sorted.
func (r *Registry) HistogramNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.hists))
	for n := range r.hists {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Label renders a metric name with label pairs:
// Label("x_us", "proc", "read") → x_us{proc="read"}.
func Label(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// baseOf strips the label block from a series name.
func baseOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// series rebuilds a histogram series name with a suffix on the base and
// optionally an extra le label spliced into the label block:
// series(`x_us{proc="read"}`, "_bucket", "255") →
// x_us_bucket{proc="read",le="255"}.
func series(name, suffix, le string) string {
	base, labels := name, ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		base, labels = name[:i], name[i+1:len(name)-1]
	}
	if le != "" {
		if labels != "" {
			labels += ","
		}
		labels += `le="` + le + `"`
	}
	if labels == "" {
		return base + suffix
	}
	return base + suffix + "{" + labels + "}"
}

// Snapshot is a point-in-time copy of every metric in a registry,
// suitable for diffing (the tsdb sampler), JSON rendering (/vars), or
// text exposition without further synchronization. Gauge funcs have
// already been evaluated into Gauges.
type Snapshot struct {
	Counters map[string]int64        `json:"counters"`
	Gauges   map[string]float64      `json:"gauges"`
	Hists    map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state. Safe on a nil registry
// (returns empty maps) and safe to call while recorders run.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]float64{},
		Hists:    map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	fns := make(map[string]func() float64, len(r.gaugeFns))
	for n, fn := range r.gaugeFns {
		fns[n] = fn
	}
	for n, h := range r.hists {
		s.Hists[n] = h.Snapshot()
	}
	r.mu.Unlock()
	// Gauge funcs run unlocked: they read other subsystems and may be
	// slow; holding the registry lock across them invites deadlock.
	for n, fn := range fns {
		s.Gauges[n] = fn()
	}
	return s
}

// helpTexts copies the registered # HELP strings.
func (r *Registry) helpTexts() map[string]string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]string, len(r.helps))
	for n, t := range r.helps {
		out[n] = t
	}
	return out
}

// WriteProm writes every metric in Prometheus text exposition format,
// deterministically ordered: # HELP (where registered) and # TYPE
// precede each family. Histograms appear as cumulative buckets
// (le-labelled, microsecond bounds) plus _sum and _count, with estimated
// p50/p90/p99 emitted as comments for human readers.
func (r *Registry) WriteProm(w io.Writer) {
	if r == nil {
		return
	}
	snap := r.Snapshot()
	helps := r.helpTexts()

	typed := map[string]bool{}
	writeType := func(name, kind string) {
		base := baseOf(name)
		if !typed[base] {
			typed[base] = true
			if help, ok := helps[base]; ok {
				fmt.Fprintf(w, "# HELP %s %s\n", base, help)
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		}
	}
	for _, n := range sortedKeys(snap.Counters) {
		writeType(n, "counter")
		fmt.Fprintf(w, "%s %d\n", n, snap.Counters[n])
	}
	for _, n := range sortedKeys(snap.Gauges) {
		writeType(n, "gauge")
		fmt.Fprintf(w, "%s %g\n", n, snap.Gauges[n])
	}
	for _, n := range sortedKeys(snap.Hists) {
		s := snap.Hists[n]
		writeType(n, "histogram")
		var cum int64
		top := 0
		for i, c := range s.Counts {
			if c > 0 {
				top = i
			}
		}
		for i := 0; i <= top; i++ {
			cum += s.Counts[i]
			_, hi := bucketBounds(i)
			// OpenMetrics-style exemplar suffix: links the bucket to the
			// causal op ID of a recent sample. Only span-armed runs ever
			// record exemplars, so plain output is byte-identical.
			if ex := s.Exemplars[i]; ex != 0 {
				fmt.Fprintf(w, "%s %d # {op=\"%d\"}\n", series(n, "_bucket", fmt.Sprintf("%d", hi)), cum, ex)
				continue
			}
			fmt.Fprintf(w, "%s %d\n", series(n, "_bucket", fmt.Sprintf("%d", hi)), cum)
		}
		fmt.Fprintf(w, "%s %d\n", series(n, "_bucket", "+Inf"), s.Count)
		fmt.Fprintf(w, "%s %d\n", series(n, "_sum", ""), s.Sum)
		fmt.Fprintf(w, "%s %d\n", series(n, "_count", ""), s.Count)
		if s.Count > 0 {
			fmt.Fprintf(w, "# %s p50=%.0f p90=%.0f p99=%.0f max=%d\n",
				baseOf(n), s.Quantile(0.50), s.Quantile(0.90), s.Quantile(0.99), s.Max)
		}
	}
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
