package metrics

import (
	"testing"
)

// The disabled configuration must be ~free: a nil registry hands out nil
// metrics, and recording to them is a single nil check. These benchmarks
// prove the RPC hot path pays nothing when metrics are off.

func BenchmarkNilHistogramObserve(b *testing.B) {
	var h *Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkNilRegistryHistogram(b *testing.B) {
	var r *Registry
	for i := 0; i < b.N; i++ {
		r.Histogram("x").Observe(int64(i))
	}
}

// Enabled-path costs, for comparison.

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramQuantile(b *testing.B) {
	var h Histogram
	for i := int64(0); i < 10000; i++ {
		h.Observe(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Quantile(0.99)
	}
}
