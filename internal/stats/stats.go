// Package stats collects and presents the measurements the paper reports:
// per-procedure RPC operation counts (Tables 5-2, 5-4, 5-6), time series
// of call rates and server CPU utilization (Figures 5-1, 5-2), and
// aligned-text tables and ASCII charts for the benchmark harness output.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"spritelynfs/internal/sim"
)

// Ops counts operations by name.
type Ops struct {
	m map[string]int64
}

// NewOps returns an empty counter set.
func NewOps() *Ops { return &Ops{m: make(map[string]int64)} }

// Inc adds one to name.
func (o *Ops) Inc(name string) { o.m[name]++ }

// Add adds n to name.
func (o *Ops) Add(name string, n int64) { o.m[name] += n }

// Get returns the count for name.
func (o *Ops) Get(name string) int64 { return o.m[name] }

// Total returns the sum of all counts.
func (o *Ops) Total() int64 {
	var t int64
	for _, v := range o.m {
		t += v
	}
	return t
}

// Sum returns the combined count of the named operations.
func (o *Ops) Sum(names ...string) int64 {
	var t int64
	for _, n := range names {
		t += o.m[n]
	}
	return t
}

// Names returns the counted names in sorted order.
func (o *Ops) Names() []string {
	out := make([]string, 0, len(o.m))
	for n := range o.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Clone copies the counter set.
func (o *Ops) Clone() *Ops {
	c := NewOps()
	for k, v := range o.m {
		c.m[k] = v
	}
	return c
}

// Diff returns o minus base (counts accumulated since base was cloned).
func (o *Ops) Diff(base *Ops) *Ops {
	d := NewOps()
	for k, v := range o.m {
		if dv := v - base.m[k]; dv != 0 {
			d.m[k] = dv
		}
	}
	return d
}

// String formats the non-zero counts compactly.
func (o *Ops) String() string {
	var b strings.Builder
	for i, n := range o.Names() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", n, o.m[n])
	}
	return b.String()
}

// TimeSeries accumulates values into fixed-width virtual-time buckets.
type TimeSeries struct {
	bucket sim.Duration
	vals   []float64
}

// NewTimeSeries returns a series with the given bucket width.
func NewTimeSeries(bucket sim.Duration) *TimeSeries {
	if bucket <= 0 {
		bucket = 5 * sim.Second
	}
	return &TimeSeries{bucket: bucket}
}

// Bucket returns the bucket width.
func (ts *TimeSeries) Bucket() sim.Duration { return ts.bucket }

func (ts *TimeSeries) grow(idx int) {
	for len(ts.vals) <= idx {
		ts.vals = append(ts.vals, 0)
	}
}

// Add accumulates v into the bucket containing t.
func (ts *TimeSeries) Add(t sim.Time, v float64) {
	idx := int(int64(t) / int64(ts.bucket))
	if idx < 0 {
		idx = 0
	}
	ts.grow(idx)
	ts.vals[idx] += v
}

// AddInterval spreads the interval [start, end) across the buckets it
// overlaps, adding the overlap duration (in seconds) to each. Used for
// resource busy-time accounting: dividing each bucket by the bucket width
// yields utilization.
func (ts *TimeSeries) AddInterval(start, end sim.Time) {
	if end <= start {
		return
	}
	b := int64(ts.bucket)
	for t := start; t < end; {
		idx := int(int64(t) / b)
		bucketEnd := sim.Time((int64(idx) + 1) * b)
		segEnd := end
		if bucketEnd < segEnd {
			segEnd = bucketEnd
		}
		ts.grow(idx)
		ts.vals[idx] += segEnd.Sub(t).Seconds()
		t = segEnd
	}
}

// Values returns the bucket values (the slice is shared; do not mutate).
func (ts *TimeSeries) Values() []float64 { return ts.vals }

// Rate returns per-second rates: each bucket divided by the bucket width.
func (ts *TimeSeries) Rate() []float64 {
	out := make([]float64, len(ts.vals))
	den := ts.bucket.Seconds()
	for i, v := range ts.vals {
		out[i] = v / den
	}
	return out
}

// Mean returns the average bucket value over the first n buckets (all if
// n <= 0 or n > len).
func (ts *TimeSeries) Mean(n int) float64 {
	if n <= 0 || n > len(ts.vals) {
		n = len(ts.vals)
	}
	if n == 0 {
		return 0
	}
	var s float64
	for _, v := range ts.vals[:n] {
		s += v
	}
	return s / float64(n)
}

// Correlation returns the Pearson correlation of two series over their
// common prefix (0 if degenerate). The paper observes that server CPU
// load correlates with the total call rate but not with read/write rates.
func Correlation(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n < 2 {
		return 0
	}
	var ma, mb float64
	for i := 0; i < n; i++ {
		ma += a[i]
		mb += b[i]
	}
	ma /= float64(n)
	mb /= float64(n)
	var cov, va, vb float64
	for i := 0; i < n; i++ {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / (math.Sqrt(va) * math.Sqrt(vb))
}

// Table renders aligned text tables.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends one row of cells.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// Render writes the table to w. Rows may have more cells than there are
// headers; the width list grows to cover the widest row.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for len(widths) < len(row) {
			widths = append(widths, 0)
		}
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// Chart renders series as a crude ASCII strip chart (one row per series),
// scaled to each series' own maximum — enough to see the shape the
// paper's figures show.
func Chart(w io.Writer, title string, xLabel string, series map[string][]float64, order []string) {
	const levels = " .:-=+*#%@"
	fmt.Fprintf(w, "%s\n", title)
	for _, name := range order {
		vals := series[name]
		max := 0.0
		for _, v := range vals {
			if v > max {
				max = v
			}
		}
		var b strings.Builder
		for _, v := range vals {
			idx := 0
			if max > 0 {
				idx = int(v / max * float64(len(levels)-1))
			}
			if idx >= len(levels) {
				idx = len(levels) - 1
			}
			b.WriteByte(levels[idx])
		}
		fmt.Fprintf(w, "  %-12s |%s| max=%.2f\n", name, b.String(), max)
	}
	fmt.Fprintf(w, "  %s\n", xLabel)
}
