package stats

import (
	"math"
	"strings"
	"testing"

	"spritelynfs/internal/sim"
)

func TestOpsBasics(t *testing.T) {
	o := NewOps()
	o.Inc("read")
	o.Inc("read")
	o.Add("write", 5)
	if o.Get("read") != 2 || o.Get("write") != 5 || o.Get("absent") != 0 {
		t.Errorf("counts wrong: %s", o)
	}
	if o.Total() != 7 {
		t.Errorf("total %d", o.Total())
	}
	if o.Sum("read", "write") != 7 || o.Sum("read") != 2 {
		t.Error("Sum wrong")
	}
	names := o.Names()
	if len(names) != 2 || names[0] != "read" || names[1] != "write" {
		t.Errorf("names %v", names)
	}
}

func TestOpsCloneAndDiff(t *testing.T) {
	o := NewOps()
	o.Add("read", 3)
	base := o.Clone()
	o.Add("read", 4)
	o.Inc("write")
	d := o.Diff(base)
	if d.Get("read") != 4 || d.Get("write") != 1 {
		t.Errorf("diff %s", d)
	}
	// The clone must be independent.
	if base.Get("read") != 3 {
		t.Error("clone aliased")
	}
	// Zero entries are omitted from the diff.
	if len(d.Names()) != 2 {
		t.Errorf("diff names %v", d.Names())
	}
}

func TestOpsString(t *testing.T) {
	o := NewOps()
	o.Inc("b")
	o.Inc("a")
	if s := o.String(); s != "a=1 b=1" {
		t.Errorf("String() = %q", s)
	}
}

func TestTimeSeriesAdd(t *testing.T) {
	ts := NewTimeSeries(sim.Second)
	ts.Add(sim.Time(500*sim.Millisecond), 1)
	ts.Add(sim.Time(999*sim.Millisecond), 2)
	ts.Add(sim.Time(1000*sim.Millisecond), 4)
	vals := ts.Values()
	if len(vals) != 2 || vals[0] != 3 || vals[1] != 4 {
		t.Errorf("values %v", vals)
	}
	rates := ts.Rate()
	if rates[0] != 3 || rates[1] != 4 {
		t.Errorf("rates %v", rates)
	}
}

func TestTimeSeriesAddIntervalSplitsBuckets(t *testing.T) {
	ts := NewTimeSeries(sim.Second)
	// 0.5s .. 2.5s busy: 0.5s in bucket 0, 1s in bucket 1, 0.5s in 2.
	ts.AddInterval(sim.Time(500*sim.Millisecond), sim.Time(2500*sim.Millisecond))
	vals := ts.Values()
	want := []float64{0.5, 1.0, 0.5}
	if len(vals) != 3 {
		t.Fatalf("values %v", vals)
	}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-9 {
			t.Errorf("bucket %d = %v, want %v", i, vals[i], want[i])
		}
	}
}

func TestTimeSeriesAddIntervalBoundaries(t *testing.T) {
	// Interval starting exactly on a bucket boundary.
	ts := NewTimeSeries(sim.Second)
	ts.AddInterval(sim.Time(sim.Second), sim.Time(1500*sim.Millisecond))
	vals := ts.Values()
	if len(vals) != 2 || vals[0] != 0 || math.Abs(vals[1]-0.5) > 1e-9 {
		t.Errorf("start-on-boundary values %v", vals)
	}

	// Interval ending exactly on a bucket boundary: nothing spills into
	// the next bucket.
	ts = NewTimeSeries(sim.Second)
	ts.AddInterval(sim.Time(500*sim.Millisecond), sim.Time(sim.Second))
	vals = ts.Values()
	if len(vals) != 1 || math.Abs(vals[0]-0.5) > 1e-9 {
		t.Errorf("end-on-boundary values %v", vals)
	}

	// Interval spanning whole buckets exactly: each gets one full second.
	ts = NewTimeSeries(sim.Second)
	ts.AddInterval(sim.Time(sim.Second), sim.Time(4*sim.Second))
	vals = ts.Values()
	want := []float64{0, 1, 1, 1}
	if len(vals) != len(want) {
		t.Fatalf("aligned-span values %v", vals)
	}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-9 {
			t.Errorf("aligned-span bucket %d = %v, want %v", i, vals[i], want[i])
		}
	}

	// Empty and inverted intervals record nothing.
	ts = NewTimeSeries(sim.Second)
	ts.AddInterval(sim.Time(sim.Second), sim.Time(sim.Second))
	ts.AddInterval(sim.Time(2*sim.Second), sim.Time(sim.Second))
	if len(ts.Values()) != 0 {
		t.Errorf("degenerate intervals recorded %v", ts.Values())
	}
}

func TestTimeSeriesMean(t *testing.T) {
	ts := NewTimeSeries(sim.Second)
	ts.Add(0, 2)
	ts.Add(sim.Time(sim.Second), 4)
	ts.Add(sim.Time(2*sim.Second), 6)
	if m := ts.Mean(0); m != 4 {
		t.Errorf("Mean(all) = %v", m)
	}
	if m := ts.Mean(2); m != 3 {
		t.Errorf("Mean(2) = %v", m)
	}
	empty := NewTimeSeries(sim.Second)
	if empty.Mean(0) != 0 {
		t.Error("empty mean")
	}
}

func TestCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	up := []float64{2, 4, 6, 8, 10}
	down := []float64{5, 4, 3, 2, 1}
	if c := Correlation(a, up); math.Abs(c-1) > 1e-9 {
		t.Errorf("corr(up) = %v", c)
	}
	if c := Correlation(a, down); math.Abs(c+1) > 1e-9 {
		t.Errorf("corr(down) = %v", c)
	}
	flat := []float64{7, 7, 7, 7, 7}
	if c := Correlation(a, flat); c != 0 {
		t.Errorf("corr(flat) = %v", c)
	}
	if c := Correlation(a[:1], up[:1]); c != 0 {
		t.Errorf("corr(short) = %v", c)
	}
	// Different lengths use the common prefix.
	if c := Correlation(a, up[:3]); math.Abs(c-1) > 1e-9 {
		t.Errorf("corr(prefix) = %v", c)
	}
}

func TestCorrelationDegenerate(t *testing.T) {
	if c := Correlation(nil, nil); c != 0 {
		t.Errorf("corr(nil) = %v", c)
	}
	if c := Correlation([]float64{1, 2, 3}, nil); c != 0 {
		t.Errorf("corr(a, nil) = %v", c)
	}
	if c := Correlation([]float64{5}, []float64{9}); c != 0 {
		t.Errorf("corr(single) = %v", c)
	}
	// Zero variance on either side yields 0, not NaN.
	flat := []float64{3, 3, 3}
	vary := []float64{1, 2, 3}
	for _, c := range []float64{Correlation(flat, vary), Correlation(vary, flat), Correlation(flat, flat)} {
		if c != 0 || math.IsNaN(c) {
			t.Errorf("zero-variance corr = %v", c)
		}
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Title", "Col", "Value")
	tb.AddRow("short", "1")
	tb.AddRow("a-much-longer-cell", "22")
	var b strings.Builder
	tb.Render(&b)
	out := b.String()
	if !strings.Contains(out, "Title") || !strings.Contains(out, "a-much-longer-cell") {
		t.Errorf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: both data rows put "1"/"22" at the same offset.
	if idx1, idx2 := strings.Index(lines[3], "1"), strings.Index(lines[4], "22"); idx1 != idx2 {
		t.Errorf("misaligned columns:\n%s", out)
	}
}

func TestTableRenderWideRows(t *testing.T) {
	// Rows wider than the header list get their own grown columns rather
	// than all being clamped into the last header's width.
	tb := NewTable("", "A", "B")
	tb.AddRow("x", "y", "extra-one", "extra-two")
	tb.AddRow("1", "2", "3", "4")
	var b strings.Builder
	tb.Render(&b)
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), b.String())
	}
	// The two data rows align column by column.
	row1, row2 := lines[2], lines[3]
	if i1, i2 := strings.Index(row1, "extra-two"), strings.Index(row2, "4"); i1 != i2 {
		t.Errorf("extra columns misaligned (%d vs %d):\n%s", i1, i2, b.String())
	}
	if i1, i2 := strings.Index(row1, "extra-one"), strings.Index(row2, "3"); i1 != i2 {
		t.Errorf("extra columns misaligned (%d vs %d):\n%s", i1, i2, b.String())
	}
}

func TestChartRenders(t *testing.T) {
	var b strings.Builder
	Chart(&b, "title", "x", map[string][]float64{
		"s1": {0, 1, 2, 4},
		"s2": {4, 0, 0, 0},
	}, []string{"s1", "s2"})
	out := b.String()
	if !strings.Contains(out, "s1") || !strings.Contains(out, "s2") {
		t.Errorf("chart missing series:\n%s", out)
	}
	if !strings.Contains(out, "max=4.00") {
		t.Errorf("chart missing scale:\n%s", out)
	}
}
