package disk

import (
	"testing"

	"spritelynfs/internal/sim"
)

func TestReadCost(t *testing.T) {
	k := sim.NewKernel(1)
	d := New(k, "d0", Params{AccessTime: 10 * sim.Millisecond, BytesPerSec: 1_000_000})
	var done sim.Time
	k.Go("reader", func(p *sim.Proc) {
		d.Read(p, 4096)
		done = p.Now()
	})
	k.Run()
	// 10ms access + 4096us transfer.
	want := sim.Time(10*sim.Millisecond + 4096*sim.Microsecond)
	if done != want {
		t.Errorf("read completed at %v, want %v", done, want)
	}
	s := d.Stats()
	if s.Reads != 1 || s.BytesRead != 4096 {
		t.Errorf("stats %+v", s)
	}
}

func TestWritesQueueOnArm(t *testing.T) {
	k := sim.NewKernel(1)
	d := New(k, "d0", Params{AccessTime: 10 * sim.Millisecond})
	var completions []sim.Time
	for i := 0; i < 3; i++ {
		k.Go("writer", func(p *sim.Proc) {
			d.Write(p, 512)
			completions = append(completions, p.Now())
		})
	}
	k.Run()
	want := []sim.Time{
		sim.Time(10 * sim.Millisecond),
		sim.Time(20 * sim.Millisecond),
		sim.Time(30 * sim.Millisecond),
	}
	for i := range want {
		if completions[i] != want[i] {
			t.Errorf("write %d at %v, want %v", i, completions[i], want[i])
		}
	}
}

func TestWriteAsyncDoesNotBlock(t *testing.T) {
	k := sim.NewKernel(1)
	d := New(k, "d0", Params{AccessTime: 50 * sim.Millisecond})
	var callerAt, mediaAt sim.Time
	k.Go("writer", func(p *sim.Proc) {
		d.WriteAsync(4096, func() { mediaAt = k.Now() })
		callerAt = p.Now()
	})
	k.Run()
	if callerAt != 0 {
		t.Errorf("async write blocked the caller until %v", callerAt)
	}
	if mediaAt != sim.Time(50*sim.Millisecond) {
		t.Errorf("media write at %v, want 50ms", mediaAt)
	}
}

func TestAsyncThenSyncQueue(t *testing.T) {
	// A synchronous read issued while async writes occupy the arm must
	// wait behind them — the mechanism by which background write-back
	// delays foreground reads.
	k := sim.NewKernel(1)
	d := New(k, "d0", Params{AccessTime: 10 * sim.Millisecond})
	var readDone sim.Time
	k.Go("mix", func(p *sim.Proc) {
		d.WriteAsync(0, nil)
		d.WriteAsync(0, nil)
		d.Read(p, 0)
		readDone = p.Now()
	})
	k.Run()
	if readDone != sim.Time(30*sim.Millisecond) {
		t.Errorf("read done at %v, want 30ms (behind two writes)", readDone)
	}
}

func TestRA81Parameters(t *testing.T) {
	p := RA81()
	if p.AccessTime != 28*sim.Millisecond || p.BytesPerSec != 2_200_000 {
		t.Errorf("RA81 params %+v changed", p)
	}
}

func TestUtilization(t *testing.T) {
	k := sim.NewKernel(1)
	d := New(k, "d0", Params{AccessTime: sim.Second})
	k.Go("w", func(p *sim.Proc) {
		d.Write(p, 0)
		p.Sleep(sim.Second) // idle second
	})
	k.Run()
	if u := d.Utilization(); u < 0.49 || u > 0.51 {
		t.Errorf("utilization %f, want ~0.5", u)
	}
}

func TestQueueDelayStats(t *testing.T) {
	// Two back-to-back sync writes: the second waits a full service time.
	k := sim.NewKernel(1)
	d := New(k, "d0", Params{AccessTime: 10 * sim.Millisecond})
	for i := 0; i < 2; i++ {
		k.Go("writer", func(p *sim.Proc) { d.Write(p, 0) })
	}
	k.Run()
	if got := d.Stats().QueueDelay; got != 10*sim.Millisecond {
		t.Errorf("sync queue delay %v, want 10ms", got)
	}
}

func TestQueueDelayAsyncStats(t *testing.T) {
	// Three async writes enqueued at t=0: delays 0, 10ms, 20ms.
	k := sim.NewKernel(1)
	d := New(k, "d0", Params{AccessTime: 10 * sim.Millisecond})
	k.Go("writer", func(p *sim.Proc) {
		d.WriteAsync(0, nil)
		d.WriteAsync(0, nil)
		d.WriteAsync(0, nil)
	})
	k.Run()
	if got := d.Stats().QueueDelayAsync; got != 30*sim.Millisecond {
		t.Errorf("async queue delay %v, want 30ms", got)
	}
}

func TestSchedulerMergesAdjacentSameFile(t *testing.T) {
	// Six adjacent 4K blocks of one file: one arm op of 24K instead of six.
	k := sim.NewKernel(1)
	d := New(k, "d0", Params{AccessTime: 10 * sim.Millisecond, BytesPerSec: 1 << 20})
	s := NewScheduler(d)
	for b := int64(0); b < 6; b++ {
		s.Enqueue(Req{Ino: 7, Block: b, Bytes: 4096})
	}
	if s.Depth() != 6 {
		t.Fatalf("depth %d, want 6", s.Depth())
	}
	var ops int
	k.Go("flusher", func(p *sim.Proc) { ops = s.FlushSync(p) })
	k.Run()
	if ops != 1 {
		t.Fatalf("flush issued %d ops, want 1", ops)
	}
	st := s.Stats()
	if st.Requests != 6 || st.Merged != 5 || st.Ops != 1 || st.Flushes != 1 || st.MaxDepth != 6 {
		t.Errorf("stats %+v", st)
	}
	if got := st.GatherRatio(); got != 6 {
		t.Errorf("gather ratio %f, want 6", got)
	}
	ds := d.Stats()
	if ds.Writes != 1 || ds.BytesWritten != 6*4096 {
		t.Errorf("disk stats %+v", ds)
	}
}

func TestSchedulerSplitsAcrossFilesAndGaps(t *testing.T) {
	k := sim.NewKernel(1)
	d := New(k, "d0", Params{AccessTime: 10 * sim.Millisecond})
	s := NewScheduler(d)
	// File 1 blocks 0,1 (one run); file 1 block 5 (gap → new run);
	// file 2 block 6 (different file → new run even though adjacent number).
	s.Enqueue(Req{Ino: 1, Block: 1, Bytes: 4096})
	s.Enqueue(Req{Ino: 2, Block: 6, Bytes: 4096})
	s.Enqueue(Req{Ino: 1, Block: 0, Bytes: 4096})
	s.Enqueue(Req{Ino: 1, Block: 5, Bytes: 4096})
	var ops int
	k.Go("flusher", func(p *sim.Proc) { ops = s.FlushSync(p) })
	k.Run()
	if ops != 3 {
		t.Errorf("flush issued %d ops, want 3", ops)
	}
	if st := s.Stats(); st.Merged != 1 {
		t.Errorf("merged %d, want 1", st.Merged)
	}
}

func TestSchedulerCollapsesDuplicateBlock(t *testing.T) {
	k := sim.NewKernel(1)
	d := New(k, "d0", Params{AccessTime: 10 * sim.Millisecond, BytesPerSec: 1 << 20})
	s := NewScheduler(d)
	s.Enqueue(Req{Ino: 3, Block: 2, Bytes: 1024})
	s.Enqueue(Req{Ino: 3, Block: 2, Bytes: 4096}) // rewrite, larger extent
	k.Go("flusher", func(p *sim.Proc) { s.FlushSync(p) })
	k.Run()
	if st := s.Stats(); st.Ops != 1 || st.Merged != 1 {
		t.Errorf("stats %+v", st)
	}
	if ds := d.Stats(); ds.BytesWritten != 4096 {
		t.Errorf("bytes written %d, want 4096 (duplicate collapsed)", ds.BytesWritten)
	}
}

func TestSchedulerFlushAsync(t *testing.T) {
	k := sim.NewKernel(1)
	d := New(k, "d0", Params{AccessTime: 10 * sim.Millisecond})
	s := NewScheduler(d)
	s.Enqueue(Req{Ino: 1, Block: 0, Bytes: 4096})
	s.Enqueue(Req{Ino: 1, Block: 1, Bytes: 4096})
	var callerAt sim.Time
	k.Go("flusher", func(p *sim.Proc) {
		if got := s.FlushAsync(); got != 1 {
			t.Errorf("async flush issued %d ops, want 1", got)
		}
		callerAt = p.Now()
	})
	k.Run()
	if callerAt != 0 {
		t.Errorf("async flush blocked the caller until %v", callerAt)
	}
	if s.Depth() != 0 {
		t.Errorf("queue depth %d after flush", s.Depth())
	}
}

func TestWriteBatchSweepPricing(t *testing.T) {
	// Three ops in one sorted sweep: the first pays full access, the
	// rest pay the sweep access. No transfer rate keeps the math exact.
	k := sim.NewKernel(1)
	d := New(k, "d0", Params{AccessTime: 28 * sim.Millisecond, SweepAccessTime: 14 * sim.Millisecond})
	var done sim.Time
	k.Go("w", func(p *sim.Proc) {
		d.WriteBatch(p, []int{512, 512, 4096})
		done = p.Now()
	})
	k.Run()
	if want := 28*sim.Millisecond + 2*14*sim.Millisecond; done != sim.Time(0).Add(want) {
		t.Errorf("sweep of 3 took %v, want %v", done, want)
	}
	if st := d.Stats(); st.Writes != 3 || st.BytesWritten != 5120 {
		t.Errorf("stats %+v", st)
	}
}

func TestWriteBatchNoSweepAdvantage(t *testing.T) {
	// SweepAccessTime zero: a batch degenerates to independent writes.
	k := sim.NewKernel(1)
	d := New(k, "d0", Params{AccessTime: 10 * sim.Millisecond})
	var done sim.Time
	k.Go("w", func(p *sim.Proc) {
		d.WriteBatch(p, []int{512, 512})
		done = p.Now()
	})
	k.Run()
	if want := 20 * sim.Millisecond; done != sim.Time(0).Add(want) {
		t.Errorf("batch took %v, want %v", done, want)
	}
}
