package disk

import (
	"testing"

	"spritelynfs/internal/sim"
)

func TestReadCost(t *testing.T) {
	k := sim.NewKernel(1)
	d := New(k, "d0", Params{AccessTime: 10 * sim.Millisecond, BytesPerSec: 1_000_000})
	var done sim.Time
	k.Go("reader", func(p *sim.Proc) {
		d.Read(p, 4096)
		done = p.Now()
	})
	k.Run()
	// 10ms access + 4096us transfer.
	want := sim.Time(10*sim.Millisecond + 4096*sim.Microsecond)
	if done != want {
		t.Errorf("read completed at %v, want %v", done, want)
	}
	s := d.Stats()
	if s.Reads != 1 || s.BytesRead != 4096 {
		t.Errorf("stats %+v", s)
	}
}

func TestWritesQueueOnArm(t *testing.T) {
	k := sim.NewKernel(1)
	d := New(k, "d0", Params{AccessTime: 10 * sim.Millisecond})
	var completions []sim.Time
	for i := 0; i < 3; i++ {
		k.Go("writer", func(p *sim.Proc) {
			d.Write(p, 512)
			completions = append(completions, p.Now())
		})
	}
	k.Run()
	want := []sim.Time{
		sim.Time(10 * sim.Millisecond),
		sim.Time(20 * sim.Millisecond),
		sim.Time(30 * sim.Millisecond),
	}
	for i := range want {
		if completions[i] != want[i] {
			t.Errorf("write %d at %v, want %v", i, completions[i], want[i])
		}
	}
}

func TestWriteAsyncDoesNotBlock(t *testing.T) {
	k := sim.NewKernel(1)
	d := New(k, "d0", Params{AccessTime: 50 * sim.Millisecond})
	var callerAt, mediaAt sim.Time
	k.Go("writer", func(p *sim.Proc) {
		d.WriteAsync(4096, func() { mediaAt = k.Now() })
		callerAt = p.Now()
	})
	k.Run()
	if callerAt != 0 {
		t.Errorf("async write blocked the caller until %v", callerAt)
	}
	if mediaAt != sim.Time(50*sim.Millisecond) {
		t.Errorf("media write at %v, want 50ms", mediaAt)
	}
}

func TestAsyncThenSyncQueue(t *testing.T) {
	// A synchronous read issued while async writes occupy the arm must
	// wait behind them — the mechanism by which background write-back
	// delays foreground reads.
	k := sim.NewKernel(1)
	d := New(k, "d0", Params{AccessTime: 10 * sim.Millisecond})
	var readDone sim.Time
	k.Go("mix", func(p *sim.Proc) {
		d.WriteAsync(0, nil)
		d.WriteAsync(0, nil)
		d.Read(p, 0)
		readDone = p.Now()
	})
	k.Run()
	if readDone != sim.Time(30*sim.Millisecond) {
		t.Errorf("read done at %v, want 30ms (behind two writes)", readDone)
	}
}

func TestRA81Parameters(t *testing.T) {
	p := RA81()
	if p.AccessTime != 28*sim.Millisecond || p.BytesPerSec != 2_200_000 {
		t.Errorf("RA81 params %+v changed", p)
	}
}

func TestUtilization(t *testing.T) {
	k := sim.NewKernel(1)
	d := New(k, "d0", Params{AccessTime: sim.Second})
	k.Go("w", func(p *sim.Proc) {
		d.Write(p, 0)
		p.Sleep(sim.Second) // idle second
	})
	k.Run()
	if u := d.Utilization(); u < 0.49 || u > 0.51 {
		t.Errorf("utilization %f, want ~0.5", u)
	}
}
