// Package disk models a 1989-class disk (the paper's RA81/RA82 drives):
// a single arm with an average access time per operation plus a transfer
// time proportional to the bytes moved. Operations serialize FIFO on the
// arm, so a burst of synchronous NFS writes queues exactly the way it did
// on the paper's server.
package disk

import (
	"spritelynfs/internal/sim"
	"spritelynfs/internal/span"
)

// Params is the disk cost model.
type Params struct {
	// AccessTime is the average positioning cost (seek + rotational
	// latency) charged once per operation.
	AccessTime sim.Duration
	// BytesPerSec is the media transfer rate.
	BytesPerSec int64
	// SweepAccessTime is the positioning cost for operations issued as
	// part of a sorted batch (WriteBatch): after the first op of a
	// sweep the arm moves monotonically, paying roughly track-to-track
	// seek plus rotational latency instead of the random average. Zero
	// means no sweep advantage (every op pays AccessTime).
	SweepAccessTime sim.Duration
}

// RA81 returns parameters approximating the paper's server drives:
// ~28 ms average access, 2.2 MB/s transfer. Within a sorted sweep,
// track-to-track seek (~6 ms) plus half a rotation (8.3 ms at 3600 rpm)
// puts positioning near 14 ms.
func RA81() Params {
	return Params{
		AccessTime:      28 * sim.Millisecond,
		BytesPerSec:     2_200_000,
		SweepAccessTime: 14 * sim.Millisecond,
	}
}

// Stats counts disk activity.
type Stats struct {
	Reads        int64
	Writes       int64
	BytesRead    int64
	BytesWritten int64

	// QueueDelay is the cumulative time blocking operations (Read, Write)
	// spent waiting behind the arm's backlog before service began.
	QueueDelay sim.Duration
	// QueueDelayAsync is the same for WriteAsync operations: the gap
	// between enqueue and service start. Before this was tracked only
	// busy-time was visible, so a gather win (fewer ops, shorter queues)
	// could not be attributed to reduced queueing.
	QueueDelayAsync sim.Duration
}

// Disk is a simulated drive.
type Disk struct {
	k     *sim.Kernel
	name  string
	res   *sim.Resource
	p     Params
	stats Stats
	// Spans, when set, records per-operation queue-wait and arm-time
	// spans for every blocking disk operation (WriteAsync has no waiting
	// process, so its arm time appears only in the busy-time gauge).
	Spans *span.Recorder
}

// New returns a disk named name on kernel k.
func New(k *sim.Kernel, name string, p Params) *Disk {
	return &Disk{k: k, name: name, res: sim.NewResource(k, name), p: p}
}

// Stats returns a snapshot of operation counters.
func (d *Disk) Stats() Stats { return d.stats }

// Utilization reports the fraction of elapsed time the arm was busy.
func (d *Disk) Utilization() float64 { return d.res.Utilization() }

// BusyTime reports cumulative arm busy time.
func (d *Disk) BusyTime() sim.Duration { return d.res.BusyTime() }

func (d *Disk) opCost(bytes int) sim.Duration {
	c := d.p.AccessTime
	if d.p.BytesPerSec > 0 {
		c += sim.Duration(int64(bytes) * int64(sim.Second) / d.p.BytesPerSec)
	}
	return c
}

// Read blocks p for a read of n bytes (queueing plus access plus transfer).
func (d *Disk) Read(p *sim.Proc, n int) {
	d.stats.Reads++
	d.stats.BytesRead += int64(n)
	t0 := d.k.Now()
	qd := d.res.Use(p, d.opCost(n))
	d.stats.QueueDelay += qd
	d.span(p, "read", t0, qd)
}

// Write blocks p for a synchronous write of n bytes.
func (d *Disk) Write(p *sim.Proc, n int) {
	d.stats.Writes++
	d.stats.BytesWritten += int64(n)
	t0 := d.k.Now()
	qd := d.res.Use(p, d.opCost(n))
	d.stats.QueueDelay += qd
	d.span(p, "write", t0, qd)
}

// span splits a completed blocking operation that started at t0 and
// waited qd into its queue-delay and arm-time spans.
func (d *Disk) span(p *sim.Proc, name string, t0 sim.Time, qd sim.Duration) {
	if d.Spans == nil {
		return
	}
	d.Spans.Add(p, d.name, span.DiskQueue, name, t0, t0.Add(qd))
	d.Spans.Add(p, d.name, span.DiskArm, name, t0.Add(qd), d.k.Now())
}

// WriteBatch blocks p for one sorted sweep over sizes: the first
// operation pays the full average access, the rest pay SweepAccessTime
// (the arm is already moving in order). Every operation still pays its
// own transfer time. With SweepAccessTime zero this degenerates to
// len(sizes) independent writes.
func (d *Disk) WriteBatch(p *sim.Proc, sizes []int) {
	if len(sizes) == 0 {
		return
	}
	var total sim.Duration
	for i, n := range sizes {
		c := d.opCost(n)
		if i > 0 && d.p.SweepAccessTime > 0 {
			c += d.p.SweepAccessTime - d.p.AccessTime
		}
		total += c
		d.stats.Writes++
		d.stats.BytesWritten += int64(n)
	}
	t0 := d.k.Now()
	qd := d.res.Use(p, total)
	d.stats.QueueDelay += qd
	d.span(p, "batch", t0, qd)
}

// WriteAsync queues a write of n bytes without blocking anyone (a delayed
// write being flushed in the background). fn, if non-nil, runs when the
// write reaches the media.
func (d *Disk) WriteAsync(n int, fn func()) {
	d.stats.Writes++
	d.stats.BytesWritten += int64(n)
	d.stats.QueueDelayAsync += d.res.Backlog()
	d.res.UseAsync(d.opCost(n), fn)
}
