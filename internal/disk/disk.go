// Package disk models a 1989-class disk (the paper's RA81/RA82 drives):
// a single arm with an average access time per operation plus a transfer
// time proportional to the bytes moved. Operations serialize FIFO on the
// arm, so a burst of synchronous NFS writes queues exactly the way it did
// on the paper's server.
package disk

import "spritelynfs/internal/sim"

// Params is the disk cost model.
type Params struct {
	// AccessTime is the average positioning cost (seek + rotational
	// latency) charged once per operation.
	AccessTime sim.Duration
	// BytesPerSec is the media transfer rate.
	BytesPerSec int64
}

// RA81 returns parameters approximating the paper's server drives:
// ~28 ms average access, 2.2 MB/s transfer.
func RA81() Params {
	return Params{AccessTime: 28 * sim.Millisecond, BytesPerSec: 2_200_000}
}

// Stats counts disk activity.
type Stats struct {
	Reads        int64
	Writes       int64
	BytesRead    int64
	BytesWritten int64
}

// Disk is a simulated drive.
type Disk struct {
	k     *sim.Kernel
	res   *sim.Resource
	p     Params
	stats Stats
}

// New returns a disk named name on kernel k.
func New(k *sim.Kernel, name string, p Params) *Disk {
	return &Disk{k: k, res: sim.NewResource(k, name), p: p}
}

// Stats returns a snapshot of operation counters.
func (d *Disk) Stats() Stats { return d.stats }

// Utilization reports the fraction of elapsed time the arm was busy.
func (d *Disk) Utilization() float64 { return d.res.Utilization() }

// BusyTime reports cumulative arm busy time.
func (d *Disk) BusyTime() sim.Duration { return d.res.BusyTime() }

func (d *Disk) opCost(bytes int) sim.Duration {
	c := d.p.AccessTime
	if d.p.BytesPerSec > 0 {
		c += sim.Duration(int64(bytes) * int64(sim.Second) / d.p.BytesPerSec)
	}
	return c
}

// Read blocks p for a read of n bytes (queueing plus access plus transfer).
func (d *Disk) Read(p *sim.Proc, n int) {
	d.stats.Reads++
	d.stats.BytesRead += int64(n)
	d.res.Use(p, d.opCost(n))
}

// Write blocks p for a synchronous write of n bytes.
func (d *Disk) Write(p *sim.Proc, n int) {
	d.stats.Writes++
	d.stats.BytesWritten += int64(n)
	d.res.Use(p, d.opCost(n))
}

// WriteAsync queues a write of n bytes without blocking anyone (a delayed
// write being flushed in the background). fn, if non-nil, runs when the
// write reaches the media.
func (d *Disk) WriteAsync(n int, fn func()) {
	d.stats.Writes++
	d.stats.BytesWritten += int64(n)
	d.res.UseAsync(d.opCost(n), fn)
}
