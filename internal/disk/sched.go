package disk

import (
	"sort"

	"spritelynfs/internal/sim"
)

// Req is one queued block write: file ino, block number, and the bytes
// occupied in that block. Block granularity matches the file system's
// block size; the scheduler never needs the data, only the geometry.
type Req struct {
	Ino   uint64
	Block int64
	Bytes int
}

// SchedStats counts scheduler activity.
type SchedStats struct {
	// Requests is the number of block writes accepted into the queue.
	Requests int64
	// Merged counts requests that rode a neighbor's arm operation
	// instead of paying their own access time (including duplicate
	// writes of the same block, which collapse entirely).
	Merged int64
	// Ops is the number of arm operations actually issued.
	Ops int64
	// Flushes counts flush calls that issued at least one operation.
	Flushes int64
	// MaxDepth is the high-water queue depth observed at flush time.
	MaxDepth int
}

// GatherRatio reports requests per arm operation (1.0 = no gathering).
func (s SchedStats) GatherRatio() float64 {
	if s.Ops == 0 {
		return 0
	}
	return float64(s.Requests) / float64(s.Ops)
}

// Scheduler is a write-gathering layer in front of the disk arm. Callers
// enqueue block writes as they arrive (concurrent WRITE RPCs, a COMMIT
// walking a file's dirty blocks) and flush them in batches; the scheduler
// sorts the batch by (ino, block) and merges adjacent same-file blocks
// into single arm operations, so a 24 Kbyte file that used to cost six
// accesses costs one. This is the server half of the NFSv3-style
// unstable-WRITE/COMMIT pipeline: the arm sees one op per contiguous run
// instead of one per block.
type Scheduler struct {
	d       *Disk
	pending []Req
	stats   SchedStats
}

// NewScheduler returns an empty scheduler issuing to d.
func NewScheduler(d *Disk) *Scheduler {
	return &Scheduler{d: d}
}

// Stats returns a snapshot of the gathering counters.
func (s *Scheduler) Stats() SchedStats { return s.stats }

// Depth reports the current queue depth (requests awaiting flush).
func (s *Scheduler) Depth() int { return len(s.pending) }

// Enqueue adds one block write to the gather queue. No disk activity
// happens until a flush.
func (s *Scheduler) Enqueue(r Req) {
	s.stats.Requests++
	s.pending = append(s.pending, r)
	if len(s.pending) > s.stats.MaxDepth {
		s.stats.MaxDepth = len(s.pending)
	}
}

// runs sorts the queue and merges it into per-run byte counts: adjacent
// blocks of the same file (and duplicate writes of one block) share an
// operation. The queue is left empty.
func (s *Scheduler) runs() []int {
	if len(s.pending) == 0 {
		return nil
	}
	sort.Slice(s.pending, func(i, j int) bool {
		a, b := s.pending[i], s.pending[j]
		if a.Ino != b.Ino {
			return a.Ino < b.Ino
		}
		return a.Block < b.Block
	})
	var out []int
	runBytes := 0
	var prev Req
	havePrev := false
	for _, r := range s.pending {
		switch {
		case !havePrev:
			runBytes = r.Bytes
		case r.Ino == prev.Ino && r.Block == prev.Block:
			// Rewrite of a block already in this run: one media
			// landing suffices, charge only the larger extent.
			s.stats.Merged++
			if r.Bytes > prev.Bytes {
				runBytes += r.Bytes - prev.Bytes
			}
		case r.Ino == prev.Ino && r.Block == prev.Block+1:
			s.stats.Merged++
			runBytes += r.Bytes
		default:
			out = append(out, runBytes)
			runBytes = r.Bytes
		}
		prev, havePrev = r, true
	}
	out = append(out, runBytes)
	s.pending = s.pending[:0]
	return out
}

// RunSizes drains the queue into merged per-run byte counts, counting
// stats as a flush, and hands the runs to the caller to charge — used by
// the gather gate to fold data runs and metadata updates into one sorted
// sweep (Disk.WriteBatch).
func (s *Scheduler) RunSizes() []int {
	runs := s.runs()
	if len(runs) > 0 {
		s.stats.Ops += int64(len(runs))
		s.stats.Flushes++
	}
	return runs
}

// FlushSync drains the queue, blocking p for one synchronous arm
// operation per merged run. It returns the number of operations issued.
func (s *Scheduler) FlushSync(p *sim.Proc) int {
	runs := s.runs()
	for _, n := range runs {
		s.d.Write(p, n)
	}
	if len(runs) > 0 {
		s.stats.Ops += int64(len(runs))
		s.stats.Flushes++
	}
	return len(runs)
}

// FlushAsync drains the queue without blocking anyone (background
// write-back). It returns the number of operations issued.
func (s *Scheduler) FlushAsync() int {
	runs := s.runs()
	for _, n := range runs {
		s.d.WriteAsync(n, nil)
	}
	if len(runs) > 0 {
		s.stats.Ops += int64(len(runs))
		s.stats.Flushes++
	}
	return len(runs)
}
