package proto

import "spritelynfs/internal/xdr"

// Message is implemented by every argument and reply type.
type Message interface {
	Encode(e *xdr.Encoder)
}

// Marshal encodes m into a fresh buffer.
func Marshal(m Message) []byte {
	e := xdr.NewEncoder()
	m.Encode(e)
	return e.Bytes()
}

// ---- generic replies ----

// StatusReply is a bare status (remove, rename, rmdir, close, callback).
type StatusReply struct {
	Status Status
}

func (m *StatusReply) Encode(e *xdr.Encoder) { e.Uint32(uint32(m.Status)) }

// DecodeStatusReply reads a StatusReply.
func DecodeStatusReply(d *xdr.Decoder) StatusReply {
	return StatusReply{Status: Status(d.Uint32())}
}

// AttrReply carries a status plus attributes (getattr, setattr, write).
type AttrReply struct {
	Status Status
	Attr   Fattr
}

func (m *AttrReply) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(m.Status))
	if m.Status == OK {
		m.Attr.Encode(e)
	}
}

// DecodeAttrReply reads an AttrReply.
func DecodeAttrReply(d *xdr.Decoder) AttrReply {
	r := AttrReply{Status: Status(d.Uint32())}
	if r.Status == OK {
		r.Attr = DecodeFattr(d)
	}
	return r
}

// HandleReply carries a status plus handle and attributes (lookup, create,
// mkdir).
type HandleReply struct {
	Status Status
	Handle Handle
	Attr   Fattr
}

func (m *HandleReply) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(m.Status))
	if m.Status == OK {
		m.Handle.Encode(e)
		m.Attr.Encode(e)
	}
}

// DecodeHandleReply reads a HandleReply.
func DecodeHandleReply(d *xdr.Decoder) HandleReply {
	r := HandleReply{Status: Status(d.Uint32())}
	if r.Status == OK {
		r.Handle = DecodeHandle(d)
		r.Attr = DecodeFattr(d)
	}
	return r
}

// ---- per-procedure arguments and replies ----

// HandleArgs is a bare file handle (getattr, statfs).
type HandleArgs struct {
	Handle Handle
}

func (m *HandleArgs) Encode(e *xdr.Encoder) { m.Handle.Encode(e) }

// DecodeHandleArgs reads HandleArgs.
func DecodeHandleArgs(d *xdr.Decoder) HandleArgs {
	return HandleArgs{Handle: DecodeHandle(d)}
}

// SetattrArgs changes size and/or mode.
type SetattrArgs struct {
	Handle  Handle
	SetSize bool
	Size    int64
	SetMode bool
	Mode    uint32
}

func (m *SetattrArgs) Encode(e *xdr.Encoder) {
	m.Handle.Encode(e)
	e.Bool(m.SetSize)
	e.Int64(m.Size)
	e.Bool(m.SetMode)
	e.Uint32(m.Mode)
}

// DecodeSetattrArgs reads SetattrArgs.
func DecodeSetattrArgs(d *xdr.Decoder) SetattrArgs {
	return SetattrArgs{
		Handle:  DecodeHandle(d),
		SetSize: d.Bool(),
		Size:    d.Int64(),
		SetMode: d.Bool(),
		Mode:    d.Uint32(),
	}
}

// DirOpArgs names an entry in a directory (lookup, remove, rmdir).
//
// WantAttr asks the server for post-op wcc attributes in the reply
// (remove/rmdir answer with a WccReply instead of a bare StatusReply).
// It is encoded as an optional trailing flag — absent when false — so a
// vintage request is byte-identical and an old server simply ignores
// requests it never sees.
type DirOpArgs struct {
	Dir      Handle
	Name     string
	WantAttr bool
}

func (m *DirOpArgs) Encode(e *xdr.Encoder) {
	m.Dir.Encode(e)
	e.String(m.Name)
	if m.WantAttr {
		e.Bool(true)
	}
}

// DecodeDirOpArgs reads DirOpArgs (without the optional trailing
// want-attr flag; callers that honor wcc call DecodeWantAttr after).
func DecodeDirOpArgs(d *xdr.Decoder) DirOpArgs {
	return DirOpArgs{Dir: DecodeHandle(d), Name: d.String()}
}

// DecodeWantAttr reads the optional trailing want-attr flag of
// DirOpArgs/RenameArgs/CloseArgs: absent (a vintage request) means
// false.
func DecodeWantAttr(d *xdr.Decoder) bool {
	if d.Err() != nil || d.Remaining() < 4 {
		return false
	}
	return d.Bool()
}

// CreateArgs makes a file or directory.
type CreateArgs struct {
	Dir  Handle
	Name string
	Mode uint32
}

func (m *CreateArgs) Encode(e *xdr.Encoder) {
	m.Dir.Encode(e)
	e.String(m.Name)
	e.Uint32(m.Mode)
}

// DecodeCreateArgs reads CreateArgs.
func DecodeCreateArgs(d *xdr.Decoder) CreateArgs {
	return CreateArgs{Dir: DecodeHandle(d), Name: d.String(), Mode: d.Uint32()}
}

// RenameArgs moves a directory entry. WantAttr (optional trailing flag,
// see DirOpArgs) requests post-op attributes for both directories.
type RenameArgs struct {
	SrcDir   Handle
	SrcName  string
	DstDir   Handle
	DstName  string
	WantAttr bool
}

func (m *RenameArgs) Encode(e *xdr.Encoder) {
	m.SrcDir.Encode(e)
	e.String(m.SrcName)
	m.DstDir.Encode(e)
	e.String(m.DstName)
	if m.WantAttr {
		e.Bool(true)
	}
}

// DecodeRenameArgs reads RenameArgs.
func DecodeRenameArgs(d *xdr.Decoder) RenameArgs {
	return RenameArgs{
		SrcDir:  DecodeHandle(d),
		SrcName: d.String(),
		DstDir:  DecodeHandle(d),
		DstName: d.String(),
	}
}

// ReadArgs reads a byte range.
type ReadArgs struct {
	Handle Handle
	Offset int64
	Count  uint32
}

func (m *ReadArgs) Encode(e *xdr.Encoder) {
	m.Handle.Encode(e)
	e.Int64(m.Offset)
	e.Uint32(m.Count)
}

// DecodeReadArgs reads ReadArgs.
func DecodeReadArgs(d *xdr.Decoder) ReadArgs {
	return ReadArgs{Handle: DecodeHandle(d), Offset: d.Int64(), Count: d.Uint32()}
}

// ReadReply returns file data plus fresh attributes.
type ReadReply struct {
	Status Status
	Attr   Fattr
	Data   []byte
}

func (m *ReadReply) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(m.Status))
	if m.Status == OK {
		m.Attr.Encode(e)
		e.Opaque(m.Data)
	}
}

// DecodeReadReply reads a ReadReply. Data is a zero-copy view into the
// decoder's buffer (xdr.Decoder.OpaqueRef): valid for as long as the
// reply's wire buffer lives unmodified. On the simulated transport the
// wire image is GC-owned and never reused, so callers (including the
// client block cache) may retain the view; a transport that pools or
// reuses its receive buffers must copy the body before recycling (see
// DESIGN.md §13).
func DecodeReadReply(d *xdr.Decoder) ReadReply {
	r := ReadReply{Status: Status(d.Uint32())}
	if r.Status == OK {
		r.Attr = DecodeFattr(d)
		r.Data = d.OpaqueRef()
	}
	return r
}

// WriteArgs writes a byte range. By default (Unstable false) the server
// must put the data on stable storage before replying — the original NFS
// contract of §2.1. With Unstable set, the server may buffer the data in
// memory and reply immediately; the client keeps its copy until a COMMIT
// under the same write verifier succeeds.
type WriteArgs struct {
	Handle   Handle
	Offset   int64
	Data     []byte
	Unstable bool
}

func (m *WriteArgs) Encode(e *xdr.Encoder) {
	m.Handle.Encode(e)
	e.Int64(m.Offset)
	e.Opaque(m.Data)
	e.Bool(m.Unstable)
}

// DecodeWriteArgs reads WriteArgs. Data is a zero-copy view into the
// decoder's buffer: the server consumes it within the handler
// (localfs.Store.WriteAt copies into the file), so no WRITE ever pays a
// payload copy at decode. A handler that needs the data past its return
// must copy (see DESIGN.md §13).
func DecodeWriteArgs(d *xdr.Decoder) WriteArgs {
	return WriteArgs{Handle: DecodeHandle(d), Offset: d.Int64(), Data: d.OpaqueRef(), Unstable: d.Bool()}
}

// WriteReply answers a WRITE: attributes after the write, whether the
// data is already on stable storage, and the server's write verifier
// (its crash epoch). Committed is always true for stable writes; for
// unstable writes it is false until a COMMIT lands the data.
type WriteReply struct {
	Status    Status
	Attr      Fattr
	Committed bool
	Verifier  uint64
}

func (m *WriteReply) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(m.Status))
	if m.Status == OK {
		m.Attr.Encode(e)
		e.Bool(m.Committed)
		e.Uint64(m.Verifier)
	}
}

// DecodeWriteReply reads a WriteReply.
func DecodeWriteReply(d *xdr.Decoder) WriteReply {
	r := WriteReply{Status: Status(d.Uint32())}
	if r.Status == OK {
		r.Attr = DecodeFattr(d)
		r.Committed = d.Bool()
		r.Verifier = d.Uint64()
	}
	return r
}

// CommitArgs asks the server to force every unstable write it holds for
// Handle to stable storage (whole-file commit; this reproduction does
// not need NFSv3's byte-range refinement).
type CommitArgs struct {
	Handle Handle
}

func (m *CommitArgs) Encode(e *xdr.Encoder) { m.Handle.Encode(e) }

// DecodeCommitArgs reads CommitArgs.
func DecodeCommitArgs(d *xdr.Decoder) CommitArgs {
	return CommitArgs{Handle: DecodeHandle(d)}
}

// CommitReply carries the write verifier under which the commit ran. If
// it differs from the verifier the client recorded when it sent the
// unstable writes, the server rebooted and dropped them: the client must
// redrive the data.
type CommitReply struct {
	Status   Status
	Verifier uint64
}

func (m *CommitReply) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(m.Status))
	if m.Status == OK {
		e.Uint64(m.Verifier)
	}
}

// DecodeCommitReply reads a CommitReply.
func DecodeCommitReply(d *xdr.Decoder) CommitReply {
	r := CommitReply{Status: Status(d.Uint32())}
	if r.Status == OK {
		r.Verifier = d.Uint64()
	}
	return r
}

// DirEntry is one readdir result entry.
type DirEntry struct {
	Name   string
	Fileid uint64
}

// ReaddirReply lists a whole directory (this reproduction does not need
// the RFC 1094 cookie continuation, directories fit in one reply).
type ReaddirReply struct {
	Status  Status
	Entries []DirEntry
}

func (m *ReaddirReply) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(m.Status))
	if m.Status == OK {
		e.Uint32(uint32(len(m.Entries)))
		for _, ent := range m.Entries {
			e.String(ent.Name)
			e.Uint64(ent.Fileid)
		}
	}
}

// DecodeReaddirReply reads a ReaddirReply.
func DecodeReaddirReply(d *xdr.Decoder) ReaddirReply {
	r := ReaddirReply{Status: Status(d.Uint32())}
	if r.Status != OK {
		return r
	}
	n := d.Uint32()
	if n > 1<<20 {
		return ReaddirReply{Status: ErrIO}
	}
	r.Entries = make([]DirEntry, 0, min(n, 1024))
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		r.Entries = append(r.Entries, DirEntry{Name: d.String(), Fileid: d.Uint64()})
	}
	return r
}

// StatfsReply reports file system capacity.
type StatfsReply struct {
	Status    Status
	BlockSize uint32
	Blocks    int64
	BytesUsed int64
}

func (m *StatfsReply) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(m.Status))
	if m.Status == OK {
		e.Uint32(m.BlockSize)
		e.Int64(m.Blocks)
		e.Int64(m.BytesUsed)
	}
}

// DecodeStatfsReply reads a StatfsReply.
func DecodeStatfsReply(d *xdr.Decoder) StatfsReply {
	r := StatfsReply{Status: Status(d.Uint32())}
	if r.Status == OK {
		r.BlockSize = d.Uint32()
		r.Blocks = d.Int64()
		r.BytesUsed = d.Int64()
	}
	return r
}

// ---- Spritely NFS extensions ----

// OpenArgs announces that a client process opened the file (§3.1).
type OpenArgs struct {
	Handle    Handle
	WriteMode bool // the open intends to write
}

func (m *OpenArgs) Encode(e *xdr.Encoder) {
	m.Handle.Encode(e)
	e.Bool(m.WriteMode)
}

// DecodeOpenArgs reads OpenArgs.
func DecodeOpenArgs(d *xdr.Decoder) OpenArgs {
	return OpenArgs{Handle: DecodeHandle(d), WriteMode: d.Bool()}
}

// OpenReply tells the client whether it may cache the file, carries the
// version numbers used to validate a cache retained across close/reopen,
// and piggybacks the attributes so no separate getattr is needed (§3.1).
type OpenReply struct {
	Status       Status
	CacheEnabled bool
	Version      uint32 // latest version number
	PrevVersion  uint32 // version before this open (valid cache for the writer itself)
	Attr         Fattr
}

func (m *OpenReply) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(m.Status))
	if m.Status == OK || m.Status == ErrInconsistent {
		e.Bool(m.CacheEnabled)
		e.Uint32(m.Version)
		e.Uint32(m.PrevVersion)
		m.Attr.Encode(e)
	}
}

// DecodeOpenReply reads an OpenReply.
func DecodeOpenReply(d *xdr.Decoder) OpenReply {
	r := OpenReply{Status: Status(d.Uint32())}
	if r.Status == OK || r.Status == ErrInconsistent {
		r.CacheEnabled = d.Bool()
		r.Version = d.Uint32()
		r.PrevVersion = d.Uint32()
		r.Attr = DecodeFattr(d)
	}
	return r
}

// CloseArgs tells the server the client is done with the handle; the
// write-mode flag of the matching open must be supplied because a handle
// may be open several times in different modes (§3.1). WantAttr
// (optional trailing flag, see DirOpArgs) requests the file's post-op
// attributes in a WccReply.
type CloseArgs struct {
	Handle    Handle
	WriteMode bool
	WantAttr  bool
}

func (m *CloseArgs) Encode(e *xdr.Encoder) {
	m.Handle.Encode(e)
	e.Bool(m.WriteMode)
	if m.WantAttr {
		e.Bool(true)
	}
}

// DecodeCloseArgs reads CloseArgs.
func DecodeCloseArgs(d *xdr.Decoder) CloseArgs {
	return CloseArgs{Handle: DecodeHandle(d), WriteMode: d.Bool()}
}

// CallbackArgs is the server-to-client request (§3.2): write back dirty
// blocks, invalidate the cache and stop caching, or (an extension, §6.2)
// release a delayed-close file so the server can reclaim its state entry.
type CallbackArgs struct {
	Handle     Handle
	WriteBack  bool
	Invalidate bool
	Release    bool
}

func (m *CallbackArgs) Encode(e *xdr.Encoder) {
	m.Handle.Encode(e)
	e.Bool(m.WriteBack)
	e.Bool(m.Invalidate)
	e.Bool(m.Release)
}

// DecodeCallbackArgs reads CallbackArgs.
func DecodeCallbackArgs(d *xdr.Decoder) CallbackArgs {
	return CallbackArgs{
		Handle:     DecodeHandle(d),
		WriteBack:  d.Bool(),
		Invalidate: d.Bool(),
		Release:    d.Bool(),
	}
}

// ---- crash-recovery extensions ----

// ReopenArgs re-registers a client's open state after a server restart:
// the clients together know who is caching what, and the server rebuilds
// its table from them (§2.4).
type ReopenArgs struct {
	Handle   Handle
	Readers  uint32 // processes holding the file open for read at this client
	Writers  uint32 // ditto for write
	Version  uint32 // version of the client's cached copy
	HasDirty bool   // the client holds dirty blocks for the file
}

func (m *ReopenArgs) Encode(e *xdr.Encoder) {
	m.Handle.Encode(e)
	e.Uint32(m.Readers)
	e.Uint32(m.Writers)
	e.Uint32(m.Version)
	e.Bool(m.HasDirty)
}

// DecodeReopenArgs reads ReopenArgs.
func DecodeReopenArgs(d *xdr.Decoder) ReopenArgs {
	return ReopenArgs{
		Handle:   DecodeHandle(d),
		Readers:  d.Uint32(),
		Writers:  d.Uint32(),
		Version:  d.Uint32(),
		HasDirty: d.Bool(),
	}
}

// ServerInfoReply identifies the server incarnation; a changed epoch
// tells a client the server rebooted and state must be recovered.
type ServerInfoReply struct {
	Status  Status
	Epoch   uint64
	InGrace bool // server is in its recovery grace period
}

func (m *ServerInfoReply) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(m.Status))
	e.Uint64(m.Epoch)
	e.Bool(m.InGrace)
}

// DecodeServerInfoReply reads a ServerInfoReply.
func DecodeServerInfoReply(d *xdr.Decoder) ServerInfoReply {
	return ServerInfoReply{Status: Status(d.Uint32()), Epoch: d.Uint64(), InGrace: d.Bool()}
}

// ---- administrative dump (SNFS) ----

// DumpClient is one client registration in a dumped state-table entry.
type DumpClient struct {
	Client  string
	Readers uint32
	Writers uint32
	Caching bool
}

// DumpEntry is one state-table entry in a DumpStateReply.
type DumpEntry struct {
	Handle       Handle
	State        uint32 // core.FileState numeric value
	StateName    string
	Version      uint32
	LastWriter   string
	Inconsistent bool
	Clients      []DumpClient
}

// DumpStateReply carries the server's state-table snapshot.
type DumpStateReply struct {
	Status  Status
	Epoch   uint64
	Entries []DumpEntry
}

func (m *DumpStateReply) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(m.Status))
	if m.Status != OK {
		return
	}
	e.Uint64(m.Epoch)
	e.Uint32(uint32(len(m.Entries)))
	for _, ent := range m.Entries {
		ent.Handle.Encode(e)
		e.Uint32(ent.State)
		e.String(ent.StateName)
		e.Uint32(ent.Version)
		e.String(ent.LastWriter)
		e.Bool(ent.Inconsistent)
		e.Uint32(uint32(len(ent.Clients)))
		for _, c := range ent.Clients {
			e.String(c.Client)
			e.Uint32(c.Readers)
			e.Uint32(c.Writers)
			e.Bool(c.Caching)
		}
	}
}

// DecodeDumpStateReply reads a DumpStateReply.
func DecodeDumpStateReply(d *xdr.Decoder) DumpStateReply {
	r := DumpStateReply{Status: Status(d.Uint32())}
	if r.Status != OK {
		return r
	}
	r.Epoch = d.Uint64()
	n := d.Uint32()
	if n > 1<<20 {
		return DumpStateReply{Status: ErrIO}
	}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		ent := DumpEntry{
			Handle:       DecodeHandle(d),
			State:        d.Uint32(),
			StateName:    d.String(),
			Version:      d.Uint32(),
			LastWriter:   d.String(),
			Inconsistent: d.Bool(),
		}
		m := d.Uint32()
		if m > 1<<16 {
			return DumpStateReply{Status: ErrIO}
		}
		for j := uint32(0); j < m && d.Err() == nil; j++ {
			ent.Clients = append(ent.Clients, DumpClient{
				Client:  d.String(),
				Readers: d.Uint32(),
				Writers: d.Uint32(),
				Caching: d.Bool(),
			})
		}
		r.Entries = append(r.Entries, ent)
	}
	return r
}

// ---- advisory locking extension ----

// LockArgs requests (or releases) an advisory lock on a file.
type LockArgs struct {
	Handle    Handle
	Exclusive bool
}

func (m *LockArgs) Encode(e *xdr.Encoder) {
	m.Handle.Encode(e)
	e.Bool(m.Exclusive)
}

// DecodeLockArgs reads LockArgs.
func DecodeLockArgs(d *xdr.Decoder) LockArgs {
	return LockArgs{Handle: DecodeHandle(d), Exclusive: d.Bool()}
}

// LockReply reports whether the lock was granted (a denial is not an
// error: the client polls).
type LockReply struct {
	Status  Status
	Granted bool
}

func (m *LockReply) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(m.Status))
	e.Bool(m.Granted)
}

// DecodeLockReply reads a LockReply.
func DecodeLockReply(d *xdr.Decoder) LockReply {
	return LockReply{Status: Status(d.Uint32()), Granted: d.Bool()}
}

// ---- links (RFC 1094 procedures 5, 12, 13) ----

// LinkArgs creates a hard link to an existing file.
type LinkArgs struct {
	From   Handle // the file being linked to
	ToDir  Handle
	ToName string
}

func (m *LinkArgs) Encode(e *xdr.Encoder) {
	m.From.Encode(e)
	m.ToDir.Encode(e)
	e.String(m.ToName)
}

// DecodeLinkArgs reads LinkArgs.
func DecodeLinkArgs(d *xdr.Decoder) LinkArgs {
	return LinkArgs{From: DecodeHandle(d), ToDir: DecodeHandle(d), ToName: d.String()}
}

// SymlinkArgs creates a symbolic link.
type SymlinkArgs struct {
	Dir    Handle
	Name   string
	Target string
}

func (m *SymlinkArgs) Encode(e *xdr.Encoder) {
	m.Dir.Encode(e)
	e.String(m.Name)
	e.String(m.Target)
}

// DecodeSymlinkArgs reads SymlinkArgs.
func DecodeSymlinkArgs(d *xdr.Decoder) SymlinkArgs {
	return SymlinkArgs{Dir: DecodeHandle(d), Name: d.String(), Target: d.String()}
}

// ReadlinkReply returns a symlink's target.
type ReadlinkReply struct {
	Status Status
	Target string
}

func (m *ReadlinkReply) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(m.Status))
	if m.Status == OK {
		e.String(m.Target)
	}
}

// DecodeReadlinkReply reads a ReadlinkReply.
func DecodeReadlinkReply(d *xdr.Decoder) ReadlinkReply {
	r := ReadlinkReply{Status: Status(d.Uint32())}
	if r.Status == OK {
		r.Target = d.String()
	}
	return r
}

// MetricsReply returns the server's metrics registry as Prometheus-style
// exposition text (ProcMetrics).
type MetricsReply struct {
	Status Status
	Text   string
}

func (m *MetricsReply) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(m.Status))
	if m.Status == OK {
		e.String(m.Text)
	}
}

// DecodeMetricsReply reads a MetricsReply.
func DecodeMetricsReply(d *xdr.Decoder) MetricsReply {
	r := MetricsReply{Status: Status(d.Uint32())}
	if r.Status == OK {
		r.Text = d.String()
	}
	return r
}

// AuditReply returns the server's protocol-audit report as text
// (ProcAudit).
type AuditReply struct {
	Status Status
	Text   string
}

func (m *AuditReply) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(m.Status))
	if m.Status == OK {
		e.String(m.Text)
	}
}

// DecodeAuditReply reads an AuditReply.
func DecodeAuditReply(d *xdr.Decoder) AuditReply {
	r := AuditReply{Status: Status(d.Uint32())}
	if r.Status == OK {
		r.Text = d.String()
	}
	return r
}

// ---- post-op attributes and compound lookup ----

// WccData is one post-op attribute record: the handle the attributes
// belong to plus the attributes after the operation (the useful half of
// NFSv3's weak cache consistency data; this simulation has no use for
// the pre-op half).
type WccData struct {
	Handle Handle
	Attr   Fattr
}

// WccReply answers remove/rename/close when the request carried the
// want-attr flag: the operation status plus post-op attributes for the
// objects the operation touched (remove: the directory; rename: both
// directories; close: the file). Wcc may be empty even on success — the
// attributes are a cache hint, never required for correctness.
type WccReply struct {
	Status Status
	Wcc    []WccData
}

func (m *WccReply) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(m.Status))
	e.Uint32(uint32(len(m.Wcc)))
	for _, w := range m.Wcc {
		w.Handle.Encode(e)
		w.Attr.Encode(e)
	}
}

// DecodeWccReply reads a WccReply.
func DecodeWccReply(d *xdr.Decoder) WccReply {
	r := WccReply{Status: Status(d.Uint32())}
	if d.Err() != nil || d.Remaining() == 0 {
		// A bare StatusReply (a server that ignored the want-attr
		// flag, or a shard redirect) is a WccReply with no records.
		return r
	}
	n := d.Uint32()
	if n > 16 {
		return WccReply{Status: ErrIO}
	}
	for i := uint32(0); i < n; i++ {
		r.Wcc = append(r.Wcc, WccData{Handle: DecodeHandle(d), Attr: DecodeFattr(d)})
	}
	return r
}

// LookupPathArgs resolves Names in order, each under the previous
// component, starting from Dir (ProcLookupPath).
type LookupPathArgs struct {
	Dir   Handle
	Names []string
}

func (m *LookupPathArgs) Encode(e *xdr.Encoder) {
	m.Dir.Encode(e)
	e.Uint32(uint32(len(m.Names)))
	for _, n := range m.Names {
		e.String(n)
	}
}

// DecodeLookupPathArgs reads LookupPathArgs.
func DecodeLookupPathArgs(d *xdr.Decoder) LookupPathArgs {
	a := LookupPathArgs{Dir: DecodeHandle(d)}
	n := d.Uint32()
	if n > 1<<12 {
		d.Raw() // poison: consume the rest so Err callers see garbage
		return LookupPathArgs{}
	}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		a.Names = append(a.Names, d.String())
	}
	return a
}

// LookupPathReply reports how far the server's walk got. Resolved
// counts the components consumed; Handle/Attr describe the last one
// reached and Parent its containing directory (needed when the walk
// stops at a symbolic link whose target is relative). Resolved <
// len(Names) means the walk stopped early at a symlink; a failed
// component returns its status with nothing resolved.
type LookupPathReply struct {
	Status   Status
	Resolved uint32
	Handle   Handle
	Parent   Handle
	Attr     Fattr
}

func (m *LookupPathReply) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(m.Status))
	if m.Status == OK {
		e.Uint32(m.Resolved)
		m.Handle.Encode(e)
		m.Parent.Encode(e)
		m.Attr.Encode(e)
	}
}

// DecodeLookupPathReply reads a LookupPathReply.
func DecodeLookupPathReply(d *xdr.Decoder) LookupPathReply {
	r := LookupPathReply{Status: Status(d.Uint32())}
	if r.Status == OK {
		r.Resolved = d.Uint32()
		r.Handle = DecodeHandle(d)
		r.Parent = DecodeHandle(d)
		r.Attr = DecodeFattr(d)
	}
	return r
}

// DirEntryAttrs is one ReaddirAttrs result entry: the plain readdir
// entry plus the handle and attributes a stat of it would have fetched.
type DirEntryAttrs struct {
	Name   string
	Handle Handle
	Attr   Fattr
}

// ReaddirAttrsReply lists a directory READDIRPLUS-style
// (ProcReaddirAttrs).
type ReaddirAttrsReply struct {
	Status  Status
	Entries []DirEntryAttrs
}

func (m *ReaddirAttrsReply) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(m.Status))
	if m.Status == OK {
		e.Uint32(uint32(len(m.Entries)))
		for _, ent := range m.Entries {
			e.String(ent.Name)
			ent.Handle.Encode(e)
			ent.Attr.Encode(e)
		}
	}
}

// DecodeReaddirAttrsReply reads a ReaddirAttrsReply.
func DecodeReaddirAttrsReply(d *xdr.Decoder) ReaddirAttrsReply {
	r := ReaddirAttrsReply{Status: Status(d.Uint32())}
	if r.Status != OK {
		return r
	}
	n := d.Uint32()
	if n > 1<<20 {
		return ReaddirAttrsReply{Status: ErrIO}
	}
	r.Entries = make([]DirEntryAttrs, 0, min(n, 1024))
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		r.Entries = append(r.Entries, DirEntryAttrs{
			Name:   d.String(),
			Handle: DecodeHandle(d),
			Attr:   DecodeFattr(d),
		})
	}
	return r
}
