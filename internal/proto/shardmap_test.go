package proto

import (
	"reflect"
	"testing"

	"spritelynfs/internal/xdr"
)

func TestShardMapRoundTrip(t *testing.T) {
	in := &ShardMapReply{
		Status: OK,
		Map: ShardMap{
			Version: 3,
			Servers: []string{"shard0", "shard1", "shard2"},
			Assignments: []ShardAssignment{
				{Prefix: "/u00", Shard: 0},
				{Prefix: "/u01", Shard: 1},
				{Prefix: "/u02", Shard: 2},
			},
		},
	}
	d := xdr.NewDecoder(Marshal(in))
	out := DecodeShardMapReply(d)
	if d.Err() != nil || d.Remaining() != 0 {
		t.Fatalf("decode: %v, %d left", d.Err(), d.Remaining())
	}
	if !reflect.DeepEqual(out, *in) {
		t.Errorf("round trip:\n  in  %+v\n  out %+v", *in, out)
	}

	// Error replies carry no body.
	bad := &ShardMapReply{Status: ErrIO, Map: in.Map}
	out2 := DecodeShardMapReply(xdr.NewDecoder(Marshal(bad)))
	if out2.Status != ErrIO || !out2.Map.IsZero() {
		t.Errorf("error reply %+v", out2)
	}

	// An empty map (standalone server) round-trips to zero.
	empty := &ShardMapReply{Status: OK}
	out3 := DecodeShardMapReply(xdr.NewDecoder(Marshal(empty)))
	if out3.Status != OK || !out3.Map.IsZero() {
		t.Errorf("empty reply %+v", out3)
	}
}

func TestShardMapLookup(t *testing.T) {
	m := ShardMap{
		Version: 1,
		Servers: []string{"a", "b"},
		Assignments: []ShardAssignment{
			{Prefix: "/src", Shard: 1},
			{Prefix: "/doc", Shard: 0},
		},
	}
	cases := map[string]uint32{
		"src":           1,
		"/src":          1,
		"src/lib/x.go":  1,
		"/src/lib/x.go": 1,
		"doc":           0,
		"doc/readme":    0,
		"other":         0, // unassigned names default to shard 0
		"":              0, // the root itself
		"/":             0,
	}
	for path, want := range cases {
		if got := m.Lookup(path); got != want {
			t.Errorf("Lookup(%q) = %d, want %d", path, got, want)
		}
	}
	if m.Owner("src") != 1 || m.Owner("doc") != 0 || m.Owner("zzz") != 0 {
		t.Error("Owner mismatch")
	}
}

func TestShardMapValidate(t *testing.T) {
	ok := ShardMap{Servers: []string{"a", "b"}, Assignments: []ShardAssignment{
		{Prefix: "/x", Shard: 0}, {Prefix: "/y", Shard: 1},
	}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid map rejected: %v", err)
	}
	bad := []ShardMap{
		{Servers: []string{"a"}, Assignments: []ShardAssignment{{Prefix: "x", Shard: 0}}},        // no leading slash
		{Servers: []string{"a"}, Assignments: []ShardAssignment{{Prefix: "/", Shard: 0}}},        // empty component
		{Servers: []string{"a"}, Assignments: []ShardAssignment{{Prefix: "/x/y", Shard: 0}}},     // nested prefix
		{Servers: []string{"a"}, Assignments: []ShardAssignment{{Prefix: "/x", Shard: 1}}},       // shard out of range
		{Servers: []string{"a"}, Assignments: []ShardAssignment{{Prefix: "/x"}, {Prefix: "/x"}}}, // duplicate
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad map %d accepted", i)
		}
	}
}
