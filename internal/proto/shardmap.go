package proto

import (
	"fmt"
	"strings"

	"spritelynfs/internal/xdr"
)

// ShardAssignment gives one top-level directory subtree to a shard.
//
// Prefixes are restricted to a single root-level component ("/src", not
// "/src/lib"): the server-side route guard only sees (root handle, name)
// pairs, so deeper prefixes could not be checked there and a stale-map
// client could silently operate on the wrong shard. Validate enforces
// the restriction.
type ShardAssignment struct {
	Prefix string // "/name", a single root-level component
	Shard  uint32 // index into ShardMap.Servers
}

// ShardMap is the versioned partition of the namespace across a cluster
// of SNFS servers. Consistency state (Table 4-1) is strictly per-file,
// so partitioning the namespace partitions the protocol: shards share
// nothing and a name has exactly one home at any map version.
//
// Clients cache the map; a server that is not the home of a name answers
// ErrNotHome, and the client refetches the map (ProcShardMap) and
// retries at the owner. Versions only grow; a client never replaces its
// map with an older one.
//
// Names at the root that appear in no assignment belong to shard 0.
type ShardMap struct {
	Version     uint32
	Servers     []string // shard id -> server address
	Assignments []ShardAssignment
}

// IsZero reports whether the map is unset (a standalone server).
func (m *ShardMap) IsZero() bool {
	return m.Version == 0 && len(m.Servers) == 0 && len(m.Assignments) == 0
}

// Owner returns the shard owning the root-level name (no slashes).
func (m *ShardMap) Owner(name string) uint32 {
	for _, a := range m.Assignments {
		if a.Prefix == "/"+name {
			return a.Shard
		}
	}
	return 0
}

// Lookup resolves a path (absolute or FS-relative) to its home shard by
// its first component. The root itself ("" or "/") belongs to shard 0.
func (m *ShardMap) Lookup(path string) uint32 {
	p := strings.TrimLeft(path, "/")
	if p == "" {
		return 0
	}
	if i := strings.IndexByte(p, '/'); i >= 0 {
		p = p[:i]
	}
	return m.Owner(p)
}

// Validate checks structural invariants: single-component prefixes, no
// duplicate prefixes, shard ids within Servers.
func (m *ShardMap) Validate() error {
	seen := make(map[string]bool, len(m.Assignments))
	for _, a := range m.Assignments {
		if len(a.Prefix) < 2 || a.Prefix[0] != '/' || strings.Contains(a.Prefix[1:], "/") {
			return fmt.Errorf("shardmap: prefix %q is not a single root-level component", a.Prefix)
		}
		if seen[a.Prefix] {
			return fmt.Errorf("shardmap: duplicate prefix %q", a.Prefix)
		}
		seen[a.Prefix] = true
		if int(a.Shard) >= len(m.Servers) {
			return fmt.Errorf("shardmap: prefix %q assigned to shard %d, but only %d server(s)", a.Prefix, a.Shard, len(m.Servers))
		}
	}
	return nil
}

// Encode writes m.
func (m *ShardMap) Encode(e *xdr.Encoder) {
	e.Uint32(m.Version)
	e.Uint32(uint32(len(m.Servers)))
	for _, s := range m.Servers {
		e.String(s)
	}
	e.Uint32(uint32(len(m.Assignments)))
	for _, a := range m.Assignments {
		e.String(a.Prefix)
		e.Uint32(a.Shard)
	}
}

// DecodeShardMap reads a ShardMap.
func DecodeShardMap(d *xdr.Decoder) ShardMap {
	m := ShardMap{Version: d.Uint32()}
	// Stop on decode error: a corrupt count must not drive a loop of
	// appends long after the buffer is exhausted.
	for n := d.Uint32(); n > 0 && d.Err() == nil; n-- {
		m.Servers = append(m.Servers, d.String())
	}
	for n := d.Uint32(); n > 0 && d.Err() == nil; n-- {
		m.Assignments = append(m.Assignments, ShardAssignment{Prefix: d.String(), Shard: d.Uint32()})
	}
	return m
}

// ShardMapArgs is the (empty) argument of ProcShardMap.
type ShardMapArgs struct{}

func (m *ShardMapArgs) Encode(e *xdr.Encoder) {}

// ShardMapReply carries the server's current shard map.
type ShardMapReply struct {
	Status Status
	Map    ShardMap
}

func (m *ShardMapReply) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(m.Status))
	if m.Status == OK {
		m.Map.Encode(e)
	}
}

// DecodeShardMapReply reads a ShardMapReply.
func DecodeShardMapReply(d *xdr.Decoder) ShardMapReply {
	r := ShardMapReply{Status: Status(d.Uint32())}
	if r.Status == OK {
		r.Map = DecodeShardMap(d)
	}
	return r
}
