// Package proto defines the wire protocol shared by NFS and Spritely NFS
// in this reproduction: program and procedure numbers, status codes, file
// handles, attribute records, and the argument/reply messages for every
// procedure, with XDR marshaling throughout.
//
// The NFS subset follows the NFS version 2 protocol the paper's Ultrix
// implementation spoke (RFC 1094). Spritely NFS adds exactly what §3 of
// the paper describes: client-to-server open and close procedures, and a
// server-to-client callback program (the client must run RPC service for
// it). Two further procedures, reopen and serverinfo, support the crash-
// recovery extension sketched in §2.4 (the paper did not implement
// recovery; we do, following the Sprite design it cites).
package proto

import (
	"fmt"

	"spritelynfs/internal/localfs"
	"spritelynfs/internal/xdr"
)

// RPC program numbers.
const (
	// ProgNFS carries both NFS and the SNFS client-to-server
	// extensions; plain NFS servers reject the extension procedures
	// with PROC_UNAVAIL, which is how a hybrid client discovers it is
	// talking to an unmodified server (§6.1).
	ProgNFS = 100003
	// ProgCallback is served by SNFS *clients*: the server calls it to
	// force write-back and/or cache invalidation.
	ProgCallback = 390100
)

// VersNFS is the protocol version for ProgNFS.
const VersNFS = 2

// ProgNFS procedures. Numbers 0-17 follow RFC 1094; 18+ are the Spritely
// extensions.
const (
	ProcNull     = 0
	ProcGetattr  = 1
	ProcSetattr  = 2
	ProcLookup   = 4
	ProcRead     = 6
	ProcWrite    = 8
	ProcCreate   = 9
	ProcRemove   = 10
	ProcRename   = 11
	ProcMkdir    = 14
	ProcRmdir    = 15
	ProcReadlink = 5
	ProcLink     = 12
	ProcSymlink  = 13
	ProcReaddir  = 16
	ProcStatfs   = 17

	// Spritely NFS extensions (§3.1).
	ProcOpen  = 18
	ProcClose = 19

	// Crash-recovery extensions.
	ProcReopen     = 20
	ProcServerInfo = 21

	// ProcMountRoot stands in for the separate mount protocol: it
	// returns the export's root handle and attributes.
	ProcMountRoot = 22

	// ProcDumpState is an administrative procedure: the SNFS server
	// returns a snapshot of its consistency state table.
	ProcDumpState = 23

	// ProcLock and ProcUnlock are the advisory locking extension the
	// paper's §2.2 presumes ("provided that some other mechanism, such
	// as file locking, serializes the reads and writes"). Locks are
	// polled, not blocking: a denied request returns Granted=false and
	// the client retries.
	ProcLock   = 24
	ProcUnlock = 25

	// ProcMetrics is an administrative procedure: the server returns
	// its metrics registry as Prometheus-style text (counters, gauges,
	// and per-procedure latency histograms).
	ProcMetrics = 26

	// ProcAudit is an administrative procedure: the SNFS server returns
	// its protocol auditor's report (events witnessed, invariant
	// violation counts, and the most recent violations).
	ProcAudit = 27

	// ProcShardMap returns the server's current view of the cluster
	// shard map (sharded-federation extension). A standalone server
	// returns an empty map with version 0.
	ProcShardMap = 28

	// ProcCommit forces a file's unstable writes (WriteArgs.Unstable) to
	// stable storage, gathered into merged disk operations, and returns
	// the server's write verifier. A verifier that differs from the one
	// the unstable WRITE replies carried means the server rebooted in
	// between and the data was lost: the client must resend it (the
	// NFSv3 COMMIT contract, grafted onto this paper's crash epoch).
	ProcCommit = 29

	// ProcLookupPath resolves a multi-component path in one round trip
	// (the compound-RPC answer to §5.1's per-component lookup chatter).
	// The server walks the components under the starting directory and
	// stops early at the first symbolic link, returning how far it got;
	// the client expands the link and continues.
	ProcLookupPath = 30

	// ProcReaddirAttrs is a READDIRPLUS-style listing: every entry comes
	// back with its handle and attributes, priming the client's
	// attribute cache without a getattr per entry.
	ProcReaddirAttrs = 31

	// ProcReplStream carries a batch of replication records from a
	// shard's primary to its backup (replicated-shard extension): state-
	// table transitions, committed write/commit costs, and dupcache
	// entries, applied in sequence order so the backup can take over.
	ProcReplStream = 32

	// ProcReplSync is the replication barrier: the primary asks the
	// backup which sequence number it has applied, blocking a view
	// change until the backup has everything (AsyncFS's commit point).
	ProcReplSync = 33
)

// ProgView is the viewservice control plane (replicated-shard
// extension): servers ping it, clients may query it, and it alone
// decides which server is each shard's primary.
const ProgView = 390200

// ProgView procedures.
const (
	ViewProcPing = 1
	ViewProcGet  = 2
)

// ProgCallback procedures (§3.2).
const (
	CbProcNull     = 0
	CbProcCallback = 1
)

// ProcName returns a human-readable name for a (program, procedure) pair,
// used in operation-count tables.
func ProcName(prog, proc uint32) string {
	if prog == ProgCallback {
		switch proc {
		case CbProcNull:
			return "cbnull"
		case CbProcCallback:
			return "callback"
		}
		return fmt.Sprintf("cb%d", proc)
	}
	if prog == ProgView {
		switch proc {
		case ViewProcPing:
			return "viewping"
		case ViewProcGet:
			return "viewget"
		}
		return fmt.Sprintf("view%d", proc)
	}
	switch proc {
	case ProcNull:
		return "null"
	case ProcGetattr:
		return "getattr"
	case ProcSetattr:
		return "setattr"
	case ProcLookup:
		return "lookup"
	case ProcRead:
		return "read"
	case ProcWrite:
		return "write"
	case ProcCreate:
		return "create"
	case ProcRemove:
		return "remove"
	case ProcRename:
		return "rename"
	case ProcMkdir:
		return "mkdir"
	case ProcRmdir:
		return "rmdir"
	case ProcReaddir:
		return "readdir"
	case ProcStatfs:
		return "statfs"
	case ProcReadlink:
		return "readlink"
	case ProcLink:
		return "link"
	case ProcSymlink:
		return "symlink"
	case ProcOpen:
		return "open"
	case ProcClose:
		return "close"
	case ProcReopen:
		return "reopen"
	case ProcServerInfo:
		return "serverinfo"
	case ProcMountRoot:
		return "mountroot"
	case ProcDumpState:
		return "dumpstate"
	case ProcLock:
		return "lock"
	case ProcUnlock:
		return "unlock"
	case ProcMetrics:
		return "metrics"
	case ProcAudit:
		return "audit"
	case ProcCommit:
		return "commit"
	case ProcShardMap:
		return "shardmap"
	case ProcLookupPath:
		return "lookuppath"
	case ProcReaddirAttrs:
		return "readdirattrs"
	case ProcReplStream:
		return "replstream"
	case ProcReplSync:
		return "replsync"
	}
	return fmt.Sprintf("proc%d", proc)
}

// Status is the NFS-level result code carried in every reply.
type Status uint32

// Status codes (the RFC 1094 nfsstat subset we need).
const (
	OK       Status = 0
	ErrPerm  Status = 1
	ErrNoEnt Status = 2
	ErrIO    Status = 5
	ErrExist Status = 17
	// ErrXDev rejects a rename or link whose source and destination
	// live on different shards (NFSERR_XDEV in RFC 1094): namespace
	// operations never span two servers, so neither side is ever left
	// half-applied.
	ErrXDev     Status = 18
	ErrNotDir   Status = 20
	ErrIsDir    Status = 21
	ErrInval    Status = 22
	ErrNotEmpty Status = 66
	ErrStale    Status = 70
	// ErrInconsistent is SNFS-specific: returned from open when the
	// previous writer of the file is dead and its dirty blocks are
	// unrecoverable (§3.2: "it should inform the new client that the
	// file may be in an inconsistent state").
	ErrInconsistent Status = 10001
	// ErrGrace is returned for new opens while a rebooted SNFS server
	// is rebuilding its state table from client reopens; the client
	// retries after a short delay (crash-recovery extension).
	ErrGrace Status = 10002
	// ErrTableFull is returned when the server's state table cannot
	// accommodate another simultaneously open file (§4.3.1).
	ErrTableFull Status = 10003
	// ErrNotHome is the shard-redirect status: the addressed server is
	// not the home of the name being operated on. The client's shard
	// map is stale; it must refetch the map (ProcShardMap) and retry at
	// the owner. Never returned by a standalone server.
	ErrNotHome Status = 10004
	// ErrDemoted is the replication-plane analogue of ErrNotHome: a
	// replication stream or ping reached a server (or was sent by one)
	// that the current shard map no longer names as the shard's
	// primary. The reply carries the newer map so the sender can
	// self-demote (split-brain refusal).
	ErrDemoted Status = 10005
)

func (s Status) String() string {
	switch s {
	case OK:
		return "OK"
	case ErrPerm:
		return "EPERM"
	case ErrNoEnt:
		return "ENOENT"
	case ErrIO:
		return "EIO"
	case ErrExist:
		return "EEXIST"
	case ErrXDev:
		return "EXDEV"
	case ErrNotDir:
		return "ENOTDIR"
	case ErrIsDir:
		return "EISDIR"
	case ErrInval:
		return "EINVAL"
	case ErrNotEmpty:
		return "ENOTEMPTY"
	case ErrStale:
		return "ESTALE"
	case ErrInconsistent:
		return "EINCONSISTENT"
	case ErrGrace:
		return "EGRACE"
	case ErrTableFull:
		return "ETABLEFULL"
	case ErrNotHome:
		return "ENOTHOME"
	case ErrDemoted:
		return "EDEMOTED"
	}
	return fmt.Sprintf("Status(%d)", uint32(s))
}

// Err converts a non-OK status into an error (nil for OK).
func (s Status) Err() error {
	if s == OK {
		return nil
	}
	return &StatusError{Status: s}
}

// StatusError wraps a protocol status as a Go error.
type StatusError struct{ Status Status }

func (e *StatusError) Error() string { return "nfs: " + e.Status.String() }

// StatusOf extracts the protocol status from an error produced by
// Status.Err, or ErrIO for other errors, or OK for nil.
func StatusOf(err error) Status {
	if err == nil {
		return OK
	}
	if se, ok := err.(*StatusError); ok {
		return se.Status
	}
	return ErrIO
}

// StatusFromErr maps localfs errors onto wire status codes.
func StatusFromErr(err error) Status {
	switch {
	case err == nil:
		return OK
	case errorIs(err, localfs.ErrNoEnt):
		return ErrNoEnt
	case errorIs(err, localfs.ErrExist):
		return ErrExist
	case errorIs(err, localfs.ErrNotDir):
		return ErrNotDir
	case errorIs(err, localfs.ErrIsDir):
		return ErrIsDir
	case errorIs(err, localfs.ErrNotEmpty):
		return ErrNotEmpty
	case errorIs(err, localfs.ErrStale):
		return ErrStale
	case errorIs(err, localfs.ErrInval):
		return ErrInval
	}
	return ErrIO
}

// errorIs is errors.Is without the import weight in hot paths.
func errorIs(err, target error) bool {
	for err != nil {
		if err == target {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// Handle identifies a file to the server: filesystem id, inode number,
// and generation (so reused inode numbers yield stale-handle errors).
type Handle struct {
	FSID uint32
	Ino  uint64
	Gen  uint32
}

// IsZero reports whether h is the zero handle.
func (h Handle) IsZero() bool { return h == Handle{} }

func (h Handle) String() string { return fmt.Sprintf("fh(%d:%d.%d)", h.FSID, h.Ino, h.Gen) }

// Encode writes h.
func (h Handle) Encode(e *xdr.Encoder) {
	e.Uint32(h.FSID)
	e.Uint64(h.Ino)
	e.Uint32(h.Gen)
}

// DecodeHandle reads a Handle.
func DecodeHandle(d *xdr.Decoder) Handle {
	return Handle{FSID: d.Uint32(), Ino: d.Uint64(), Gen: d.Uint32()}
}

// Fattr is the wire attribute record.
type Fattr struct {
	Type      uint32 // 1 regular, 2 directory (matches localfs.FileType)
	Mode      uint32
	Nlink     uint32
	Size      int64
	Blocks    int64
	BlockSize uint32
	Fileid    uint64
	Gen       uint32
	Atime     int64 // microseconds of simulated time
	Mtime     int64
	Ctime     int64
}

// IsDir reports whether the attributes describe a directory.
func (f Fattr) IsDir() bool { return f.Type == uint32(localfs.TypeDirectory) }

// Encode writes f.
func (f Fattr) Encode(e *xdr.Encoder) {
	e.Uint32(f.Type)
	e.Uint32(f.Mode)
	e.Uint32(f.Nlink)
	e.Int64(f.Size)
	e.Int64(f.Blocks)
	e.Uint32(f.BlockSize)
	e.Uint64(f.Fileid)
	e.Uint32(f.Gen)
	e.Int64(f.Atime)
	e.Int64(f.Mtime)
	e.Int64(f.Ctime)
}

// DecodeFattr reads an Fattr.
func DecodeFattr(d *xdr.Decoder) Fattr {
	return Fattr{
		Type:      d.Uint32(),
		Mode:      d.Uint32(),
		Nlink:     d.Uint32(),
		Size:      d.Int64(),
		Blocks:    d.Int64(),
		BlockSize: d.Uint32(),
		Fileid:    d.Uint64(),
		Gen:       d.Uint32(),
		Atime:     d.Int64(),
		Mtime:     d.Int64(),
		Ctime:     d.Int64(),
	}
}

// FattrFromAttr converts a localfs attribute record for the wire.
func FattrFromAttr(a localfs.Attr, blockSize int) Fattr {
	return Fattr{
		Type:      uint32(a.Type),
		Mode:      a.Mode,
		Nlink:     a.Nlink,
		Size:      a.Size,
		Blocks:    a.Blocks,
		BlockSize: uint32(blockSize),
		Fileid:    a.Ino,
		Gen:       a.Gen,
		Atime:     int64(a.Atime),
		Mtime:     int64(a.Mtime),
		Ctime:     int64(a.Ctime),
	}
}
