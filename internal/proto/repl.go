package proto

import "spritelynfs/internal/xdr"

// Replication and viewservice messages (replicated-shard extension).
//
// A shard's primary streams ReplRecords to its backup over ProcReplStream:
// every state-table transition, every write/commit the primary charged to
// its media, and the dupcache entry of every non-idempotent reply. The
// stream is asynchronous and bounded; ProcReplSync is the barrier that
// makes it synchronous exactly when a view change demands it.
//
// The viewservice (ProgView) hears periodic pings from every server and
// answers with the current view and shard map; a primary acks a view by
// echoing its number in ViewSeen.

// Replication record kinds.
const (
	ReplTransition = 0 // a core.TransitionEvent projection
	ReplWrite      = 1 // a write charged to the primary's media
	ReplCommit     = 2 // a COMMIT gathering a file's unstable blocks
	ReplDup        = 3 // a dupcache entry for a non-idempotent reply
)

// ReplRecord is one replicated event. Kind selects which field group is
// meaningful; the wire image always carries all of them (they are small
// and a union would buy little in a simulator).
type ReplRecord struct {
	Seq  uint64
	Kind uint32

	// ReplTransition fields: enough of a core.TransitionEvent for the
	// backup to mirror the table entry it results in.
	Event      string
	Handle     Handle
	Client     string
	To         uint32 // core.FileState after the transition
	Version    uint32
	Readers    uint32
	Writers    uint32
	LastWriter string
	HasDirty   bool
	Dropped    bool

	// ReplWrite / ReplCommit fields.
	Ino      uint64
	Offset   int64
	Length   uint32
	Unstable bool

	// ReplDup fields: the cached reply wire image keyed by (From, Xid).
	From string
	Xid  uint32
	Wire []byte
}

func (r *ReplRecord) Encode(e *xdr.Encoder) {
	e.Uint64(r.Seq)
	e.Uint32(r.Kind)
	e.String(r.Event)
	r.Handle.Encode(e)
	e.String(r.Client)
	e.Uint32(r.To)
	e.Uint32(r.Version)
	e.Uint32(r.Readers)
	e.Uint32(r.Writers)
	e.String(r.LastWriter)
	e.Bool(r.HasDirty)
	e.Bool(r.Dropped)
	e.Uint64(r.Ino)
	e.Int64(r.Offset)
	e.Uint32(r.Length)
	e.Bool(r.Unstable)
	e.String(r.From)
	e.Uint32(r.Xid)
	e.Opaque(r.Wire)
}

// DecodeReplRecord reads a ReplRecord.
func DecodeReplRecord(d *xdr.Decoder) ReplRecord {
	return ReplRecord{
		Seq:        d.Uint64(),
		Kind:       d.Uint32(),
		Event:      d.String(),
		Handle:     DecodeHandle(d),
		Client:     d.String(),
		To:         d.Uint32(),
		Version:    d.Uint32(),
		Readers:    d.Uint32(),
		Writers:    d.Uint32(),
		LastWriter: d.String(),
		HasDirty:   d.Bool(),
		Dropped:    d.Bool(),
		Ino:        d.Uint64(),
		Offset:     d.Int64(),
		Length:     d.Uint32(),
		Unstable:   d.Bool(),
		From:       d.String(),
		Xid:        d.Uint32(),
		Wire:       d.Opaque(),
	}
}

// ReplStreamArgs is one batch of the primary→backup replication stream.
// Epoch and Verifier are the primary's current incarnation numbers; the
// backup remembers them so promotion can bump past both sides' history.
type ReplStreamArgs struct {
	Shard    uint32
	Epoch    uint64
	Verifier uint64
	Records  []ReplRecord
}

func (m *ReplStreamArgs) Encode(e *xdr.Encoder) {
	e.Uint32(m.Shard)
	e.Uint64(m.Epoch)
	e.Uint64(m.Verifier)
	e.Uint32(uint32(len(m.Records)))
	for i := range m.Records {
		m.Records[i].Encode(e)
	}
}

// DecodeReplStreamArgs reads ReplStreamArgs.
func DecodeReplStreamArgs(d *xdr.Decoder) ReplStreamArgs {
	m := ReplStreamArgs{Shard: d.Uint32(), Epoch: d.Uint64(), Verifier: d.Uint64()}
	n := d.Uint32()
	if n > 1<<20 {
		return ReplStreamArgs{}
	}
	for ; n > 0 && d.Err() == nil; n-- {
		m.Records = append(m.Records, DecodeReplRecord(d))
	}
	return m
}

// ReplStreamReply acks a stream batch. Status ErrDemoted means the
// receiver is now the shard's primary (per a newer map, carried in Map):
// the sender must stop streaming and install the map.
type ReplStreamReply struct {
	Status  Status
	Applied uint64 // highest contiguous sequence number applied
	Map     ShardMap
}

func (m *ReplStreamReply) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(m.Status))
	e.Uint64(m.Applied)
	if m.Status == ErrDemoted {
		m.Map.Encode(e)
	}
}

// DecodeReplStreamReply reads a ReplStreamReply.
func DecodeReplStreamReply(d *xdr.Decoder) ReplStreamReply {
	r := ReplStreamReply{Status: Status(d.Uint32()), Applied: d.Uint64()}
	if r.Status == ErrDemoted {
		r.Map = DecodeShardMap(d)
	}
	return r
}

// ReplSyncArgs asks the backup whether it has applied through Seq.
type ReplSyncArgs struct {
	Shard uint32
	Seq   uint64
}

func (m *ReplSyncArgs) Encode(e *xdr.Encoder) {
	e.Uint32(m.Shard)
	e.Uint64(m.Seq)
}

// DecodeReplSyncArgs reads ReplSyncArgs.
func DecodeReplSyncArgs(d *xdr.Decoder) ReplSyncArgs {
	return ReplSyncArgs{Shard: d.Uint32(), Seq: d.Uint64()}
}

// ReplSyncReply reports the backup's replication progress.
type ReplSyncReply struct {
	Status  Status
	Applied uint64
	Synced  bool // Applied >= the Seq asked about, with no gap
}

func (m *ReplSyncReply) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(m.Status))
	e.Uint64(m.Applied)
	e.Bool(m.Synced)
}

// DecodeReplSyncReply reads a ReplSyncReply.
func DecodeReplSyncReply(d *xdr.Decoder) ReplSyncReply {
	return ReplSyncReply{Status: Status(d.Uint32()), Applied: d.Uint64(), Synced: d.Bool()}
}

// View is one numbered (primary, backup) assignment for a shard. Views
// only move forward; view i+1 is never published until the primary of
// view i acked it (or is being declared dead by that very change).
type View struct {
	Num     uint64
	Primary string
	Backup  string
}

func (v *View) Encode(e *xdr.Encoder) {
	e.Uint64(v.Num)
	e.String(v.Primary)
	e.String(v.Backup)
}

// DecodeView reads a View.
func DecodeView(d *xdr.Decoder) View {
	return View{Num: d.Uint64(), Primary: d.String(), Backup: d.String()}
}

// ViewPingArgs is a server's periodic liveness report to the viewservice.
type ViewPingArgs struct {
	Shard    uint32
	Addr     string
	ViewSeen uint64 // highest view number this server has acted on
	Synced   bool   // primaries: backup confirmed caught up
	Lag      uint32 // primaries: replication records queued, not yet acked
}

func (m *ViewPingArgs) Encode(e *xdr.Encoder) {
	e.Uint32(m.Shard)
	e.String(m.Addr)
	e.Uint64(m.ViewSeen)
	e.Bool(m.Synced)
	e.Uint32(m.Lag)
}

// DecodeViewPingArgs reads ViewPingArgs.
func DecodeViewPingArgs(d *xdr.Decoder) ViewPingArgs {
	return ViewPingArgs{
		Shard: d.Uint32(), Addr: d.String(), ViewSeen: d.Uint64(),
		Synced: d.Bool(), Lag: d.Uint32(),
	}
}

// ViewPingReply carries the shard's current view and the cluster map.
type ViewPingReply struct {
	Status Status
	View   View
	Map    ShardMap
}

func (m *ViewPingReply) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(m.Status))
	if m.Status == OK {
		m.View.Encode(e)
		m.Map.Encode(e)
	}
}

// DecodeViewPingReply reads a ViewPingReply.
func DecodeViewPingReply(d *xdr.Decoder) ViewPingReply {
	r := ViewPingReply{Status: Status(d.Uint32())}
	if r.Status == OK {
		r.View = DecodeView(d)
		r.Map = DecodeShardMap(d)
	}
	return r
}

// ShardView is one shard's row in a ViewGetReply.
type ShardView struct {
	Shard  uint32
	View   View
	Synced bool
	Lag    uint32
}

func (v *ShardView) Encode(e *xdr.Encoder) {
	e.Uint32(v.Shard)
	v.View.Encode(e)
	e.Bool(v.Synced)
	e.Uint32(v.Lag)
}

// DecodeShardView reads a ShardView.
func DecodeShardView(d *xdr.Decoder) ShardView {
	return ShardView{Shard: d.Uint32(), View: DecodeView(d), Synced: d.Bool(), Lag: d.Uint32()}
}

// ViewGetArgs is the (empty) argument of ViewProcGet.
type ViewGetArgs struct{}

func (m *ViewGetArgs) Encode(e *xdr.Encoder) {}

// ViewGetReply is the whole control-plane picture: every shard's view
// plus the current map. Clients use it to heal onto a new primary when
// the old one is too dead to answer ErrNotHome.
type ViewGetReply struct {
	Status Status
	Views  []ShardView
	Map    ShardMap
}

func (m *ViewGetReply) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(m.Status))
	if m.Status != OK {
		return
	}
	e.Uint32(uint32(len(m.Views)))
	for i := range m.Views {
		m.Views[i].Encode(e)
	}
	m.Map.Encode(e)
}

// DecodeViewGetReply reads a ViewGetReply.
func DecodeViewGetReply(d *xdr.Decoder) ViewGetReply {
	r := ViewGetReply{Status: Status(d.Uint32())}
	if r.Status != OK {
		return r
	}
	n := d.Uint32()
	if n > 1<<20 {
		return ViewGetReply{Status: ErrIO}
	}
	for ; n > 0 && d.Err() == nil; n-- {
		r.Views = append(r.Views, DecodeShardView(d))
	}
	r.Map = DecodeShardMap(d)
	return r
}
