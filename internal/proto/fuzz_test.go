package proto

import (
	"bytes"
	"testing"

	"spritelynfs/internal/xdr"
)

// fuzzCodecs names every proto message decoder paired with a seed value
// of its type. The fuzzer indexes into this table, so the corpus covers
// every wire format the RPC layer can carry — messages.go, repl.go, and
// shardmap.go alike.
var fuzzCodecs = []struct {
	name string
	dec  func(d *xdr.Decoder) Message
	seed Message
}{
	{"StatusReply", func(d *xdr.Decoder) Message { m := DecodeStatusReply(d); return &m }, &StatusReply{Status: ErrStale}},
	{"AttrReply", func(d *xdr.Decoder) Message { m := DecodeAttrReply(d); return &m }, &AttrReply{}},
	{"HandleReply", func(d *xdr.Decoder) Message { m := DecodeHandleReply(d); return &m }, &HandleReply{}},
	{"HandleArgs", func(d *xdr.Decoder) Message { m := DecodeHandleArgs(d); return &m }, &HandleArgs{}},
	{"SetattrArgs", func(d *xdr.Decoder) Message { m := DecodeSetattrArgs(d); return &m }, &SetattrArgs{}},
	{"DirOpArgs", func(d *xdr.Decoder) Message { m := DecodeDirOpArgs(d); return &m }, &DirOpArgs{Name: "file07.c"}},
	{"CreateArgs", func(d *xdr.Decoder) Message { m := DecodeCreateArgs(d); return &m }, &CreateArgs{Name: "new.c"}},
	{"RenameArgs", func(d *xdr.Decoder) Message { m := DecodeRenameArgs(d); return &m }, &RenameArgs{SrcName: "a", DstName: "b"}},
	{"ReadArgs", func(d *xdr.Decoder) Message { m := DecodeReadArgs(d); return &m }, &ReadArgs{Count: 8192}},
	{"ReadReply", func(d *xdr.Decoder) Message { m := DecodeReadReply(d); return &m }, &ReadReply{Status: OK, Data: []byte("payload bytes")}},
	{"WriteArgs", func(d *xdr.Decoder) Message { m := DecodeWriteArgs(d); return &m }, &WriteArgs{Offset: 4096, Data: bytes.Repeat([]byte{0xa5}, 100), Unstable: true}},
	{"WriteReply", func(d *xdr.Decoder) Message { m := DecodeWriteReply(d); return &m }, &WriteReply{Status: OK, Committed: true, Verifier: 7}},
	{"CommitArgs", func(d *xdr.Decoder) Message { m := DecodeCommitArgs(d); return &m }, &CommitArgs{}},
	{"CommitReply", func(d *xdr.Decoder) Message { m := DecodeCommitReply(d); return &m }, &CommitReply{Status: OK}},
	{"ReaddirReply", func(d *xdr.Decoder) Message { m := DecodeReaddirReply(d); return &m }, &ReaddirReply{Status: OK, Entries: []DirEntry{{Name: "f", Fileid: 3}}}},
	{"StatfsReply", func(d *xdr.Decoder) Message { m := DecodeStatfsReply(d); return &m }, &StatfsReply{}},
	{"OpenArgs", func(d *xdr.Decoder) Message { m := DecodeOpenArgs(d); return &m }, &OpenArgs{}},
	{"OpenReply", func(d *xdr.Decoder) Message { m := DecodeOpenReply(d); return &m }, &OpenReply{Status: OK}},
	{"CloseArgs", func(d *xdr.Decoder) Message { m := DecodeCloseArgs(d); return &m }, &CloseArgs{}},
	{"CallbackArgs", func(d *xdr.Decoder) Message { m := DecodeCallbackArgs(d); return &m }, &CallbackArgs{}},
	{"ReopenArgs", func(d *xdr.Decoder) Message { m := DecodeReopenArgs(d); return &m }, &ReopenArgs{}},
	{"ServerInfoReply", func(d *xdr.Decoder) Message { m := DecodeServerInfoReply(d); return &m }, &ServerInfoReply{Status: OK}},
	{"DumpStateReply", func(d *xdr.Decoder) Message { m := DecodeDumpStateReply(d); return &m }, &DumpStateReply{Status: OK}},
	{"LockArgs", func(d *xdr.Decoder) Message { m := DecodeLockArgs(d); return &m }, &LockArgs{}},
	{"LockReply", func(d *xdr.Decoder) Message { m := DecodeLockReply(d); return &m }, &LockReply{Status: OK}},
	{"LinkArgs", func(d *xdr.Decoder) Message { m := DecodeLinkArgs(d); return &m }, &LinkArgs{ToName: "ln"}},
	{"SymlinkArgs", func(d *xdr.Decoder) Message { m := DecodeSymlinkArgs(d); return &m }, &SymlinkArgs{Name: "s", Target: "/t"}},
	{"ReadlinkReply", func(d *xdr.Decoder) Message { m := DecodeReadlinkReply(d); return &m }, &ReadlinkReply{Status: OK, Target: "/t"}},
	{"MetricsReply", func(d *xdr.Decoder) Message { m := DecodeMetricsReply(d); return &m }, &MetricsReply{Status: OK}},
	{"AuditReply", func(d *xdr.Decoder) Message { m := DecodeAuditReply(d); return &m }, &AuditReply{Status: OK}},
	{"WccReply", func(d *xdr.Decoder) Message { m := DecodeWccReply(d); return &m }, &WccReply{Status: OK, Wcc: []WccData{{}}}},
	{"LookupPathArgs", func(d *xdr.Decoder) Message { m := DecodeLookupPathArgs(d); return &m }, &LookupPathArgs{Names: []string{"usr", "lib"}}},
	{"LookupPathReply", func(d *xdr.Decoder) Message { m := DecodeLookupPathReply(d); return &m }, &LookupPathReply{Status: OK}},
	{"ReaddirAttrsReply", func(d *xdr.Decoder) Message { m := DecodeReaddirAttrsReply(d); return &m }, &ReaddirAttrsReply{Status: OK, Entries: []DirEntryAttrs{{Name: "f"}}}},
	{"ReplRecord", func(d *xdr.Decoder) Message { m := DecodeReplRecord(d); return &m }, &ReplRecord{Seq: 9, Kind: ReplDup, From: "c1", Xid: 4, Wire: []byte{1, 2, 3, 4}}},
	{"ReplStreamArgs", func(d *xdr.Decoder) Message { m := DecodeReplStreamArgs(d); return &m }, &ReplStreamArgs{Shard: 1, Epoch: 2, Verifier: 3, Records: []ReplRecord{{Seq: 1, Kind: ReplWrite, Ino: 7, Length: 10}}}},
	{"ReplStreamReply", func(d *xdr.Decoder) Message { m := DecodeReplStreamReply(d); return &m }, &ReplStreamReply{Status: OK, Applied: 12}},
	{"ReplSyncArgs", func(d *xdr.Decoder) Message { m := DecodeReplSyncArgs(d); return &m }, &ReplSyncArgs{Shard: 1, Seq: 40}},
	{"ReplSyncReply", func(d *xdr.Decoder) Message { m := DecodeReplSyncReply(d); return &m }, &ReplSyncReply{Status: OK, Applied: 40, Synced: true}},
	{"View", func(d *xdr.Decoder) Message { m := DecodeView(d); return &m }, &View{Num: 3, Primary: "s0", Backup: "s1"}},
	{"ViewPingArgs", func(d *xdr.Decoder) Message { m := DecodeViewPingArgs(d); return &m }, &ViewPingArgs{Shard: 0, Addr: "s0", ViewSeen: 3, Synced: true}},
	{"ViewPingReply", func(d *xdr.Decoder) Message { m := DecodeViewPingReply(d); return &m }, &ViewPingReply{Status: OK, View: View{Num: 1, Primary: "s0"}, Map: ShardMap{Version: 1, Servers: []string{"s0"}}}},
	{"ShardView", func(d *xdr.Decoder) Message { m := DecodeShardView(d); return &m }, &ShardView{Shard: 2, View: View{Num: 5}}},
	{"ViewGetArgs", func(d *xdr.Decoder) Message { m := ViewGetArgs{}; _ = d; return &m }, &ViewGetArgs{}},
	{"ViewGetReply", func(d *xdr.Decoder) Message { m := DecodeViewGetReply(d); return &m }, &ViewGetReply{Status: OK, Views: []ShardView{{Shard: 0, View: View{Num: 1, Primary: "s0", Backup: "s1"}}}, Map: ShardMap{Version: 2, Servers: []string{"s0", "s1"}, Assignments: []ShardAssignment{{Prefix: "/src", Shard: 1}}}}},
	{"ShardMap", func(d *xdr.Decoder) Message { m := DecodeShardMap(d); return &m }, &ShardMap{Version: 4, Servers: []string{"a", "b"}, Assignments: []ShardAssignment{{Prefix: "/x", Shard: 0}}}},
	{"ShardMapArgs", func(d *xdr.Decoder) Message { m := ShardMapArgs{}; _ = d; return &m }, &ShardMapArgs{}},
	{"ShardMapReply", func(d *xdr.Decoder) Message { m := DecodeShardMapReply(d); return &m }, &ShardMapReply{Status: OK, Map: ShardMap{Version: 1, Servers: []string{"s"}}}},
}

// FuzzDecodeMessage feeds arbitrary bytes to every proto decoder. Two
// properties must hold for any input: decoding never panics (no
// out-of-bounds reads through the zero-copy views, no allocation driven
// by a corrupt length field), and decoding is *stable* — re-encoding the
// decoded value and decoding it again reproduces the same wire image
// (encode∘decode is idempotent). The corpus is seeded with a valid
// encoding of every message type, so mutation starts from structurally
// interesting inputs rather than pure noise.
func FuzzDecodeMessage(f *testing.F) {
	for i, c := range fuzzCodecs {
		f.Add(i, Marshal(c.seed))
	}
	f.Add(0, []byte{})
	f.Add(1, []byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, idx int, data []byte) {
		if idx < 0 {
			idx = -(idx + 1)
		}
		c := fuzzCodecs[idx%len(fuzzCodecs)]

		var d xdr.Decoder
		d.Reset(data)
		m1 := c.dec(&d)

		// Whatever the decoder made of the input, encoding it and
		// decoding the result must be a fixed point.
		enc1 := Marshal(m1)
		d.Reset(enc1)
		m2 := c.dec(&d)
		enc2 := Marshal(m2)
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("%s: decode not stable:\n first %x\nsecond %x", c.name, enc1, enc2)
		}
	})
}

// TestFuzzSeedsRoundTrip pins the non-fuzz property the seeds rely on:
// every seed message survives Marshal → decode → Marshal byte-identically
// (so the fuzzer's stability check starts from a known-good fixed point).
func TestFuzzSeedsRoundTrip(t *testing.T) {
	for _, c := range fuzzCodecs {
		wire := Marshal(c.seed)
		var d xdr.Decoder
		d.Reset(wire)
		m := c.dec(&d)
		if d.Err() != nil {
			t.Errorf("%s: decode of own encoding failed: %v", c.name, d.Err())
			continue
		}
		if again := Marshal(m); !bytes.Equal(again, wire) {
			t.Errorf("%s: re-encode differs:\n was %x\n got %x", c.name, wire, again)
		}
	}
}
