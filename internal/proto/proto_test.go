package proto

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"spritelynfs/internal/localfs"
	"spritelynfs/internal/xdr"
)

func TestHandleRoundTrip(t *testing.T) {
	h := Handle{FSID: 3, Ino: 0xdeadbeefcafe, Gen: 77}
	e := xdr.NewEncoder()
	h.Encode(e)
	got := DecodeHandle(xdr.NewDecoder(e.Bytes()))
	if got != h {
		t.Errorf("round trip %+v -> %+v", h, got)
	}
}

func TestFattrRoundTrip(t *testing.T) {
	f := Fattr{
		Type: 1, Mode: 0o644, Nlink: 2, Size: 1 << 40, Blocks: 99,
		BlockSize: 4096, Fileid: 12345, Gen: 9,
		Atime: 1, Mtime: 2, Ctime: 3,
	}
	e := xdr.NewEncoder()
	f.Encode(e)
	got := DecodeFattr(xdr.NewDecoder(e.Bytes()))
	if got != f {
		t.Errorf("round trip mismatch:\n  in  %+v\n  out %+v", f, got)
	}
}

func roundTrip[T Message](t *testing.T, in T, decode func(*xdr.Decoder) T) T {
	t.Helper()
	buf := Marshal(in)
	d := xdr.NewDecoder(buf)
	out := decode(d)
	if d.Err() != nil {
		t.Fatalf("decode error: %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Fatalf("%T: %d bytes left over", in, d.Remaining())
	}
	return out
}

func TestMessageRoundTrips(t *testing.T) {
	h := Handle{FSID: 1, Ino: 42, Gen: 7}
	fa := Fattr{Type: 1, Size: 100, Fileid: 42, BlockSize: 4096}

	if got := roundTrip(t, &OpenArgs{Handle: h, WriteMode: true}, func(d *xdr.Decoder) *OpenArgs {
		v := DecodeOpenArgs(d)
		return &v
	}); got.Handle != h || !got.WriteMode {
		t.Errorf("OpenArgs: %+v", got)
	}

	or := &OpenReply{Status: OK, CacheEnabled: true, Version: 9, PrevVersion: 8, Attr: fa}
	if got := roundTrip(t, or, func(d *xdr.Decoder) *OpenReply {
		v := DecodeOpenReply(d)
		return &v
	}); *got != *or {
		t.Errorf("OpenReply: %+v", got)
	}

	// Non-OK replies omit the body entirely.
	bad := &OpenReply{Status: ErrStale, CacheEnabled: true, Version: 5}
	got := roundTrip(t, bad, func(d *xdr.Decoder) *OpenReply {
		v := DecodeOpenReply(d)
		return &v
	})
	if got.Status != ErrStale || got.CacheEnabled || got.Version != 0 {
		t.Errorf("error OpenReply carried a body: %+v", got)
	}

	// ErrInconsistent replies DO carry the body (§3.2).
	inc := &OpenReply{Status: ErrInconsistent, CacheEnabled: false, Version: 5, PrevVersion: 4, Attr: fa}
	if got := roundTrip(t, inc, func(d *xdr.Decoder) *OpenReply {
		v := DecodeOpenReply(d)
		return &v
	}); *got != *inc {
		t.Errorf("inconsistent OpenReply: %+v", got)
	}

	ca := &CallbackArgs{Handle: h, WriteBack: true, Invalidate: false, Release: true}
	if got := roundTrip(t, ca, func(d *xdr.Decoder) *CallbackArgs {
		v := DecodeCallbackArgs(d)
		return &v
	}); *got != *ca {
		t.Errorf("CallbackArgs: %+v", got)
	}

	wa := &WriteArgs{Handle: h, Offset: 8192, Data: []byte("block data")}
	gw := roundTrip(t, wa, func(d *xdr.Decoder) *WriteArgs {
		v := DecodeWriteArgs(d)
		return &v
	})
	if gw.Handle != h || gw.Offset != 8192 || !bytes.Equal(gw.Data, wa.Data) {
		t.Errorf("WriteArgs: %+v", gw)
	}

	rr := &ReadReply{Status: OK, Attr: fa, Data: []byte("xyz")}
	gr := roundTrip(t, rr, func(d *xdr.Decoder) *ReadReply {
		v := DecodeReadReply(d)
		return &v
	})
	if gr.Status != OK || !bytes.Equal(gr.Data, rr.Data) || gr.Attr != fa {
		t.Errorf("ReadReply: %+v", gr)
	}

	dr := &ReaddirReply{Status: OK, Entries: []DirEntry{{"a", 1}, {"b", 2}}}
	gd := roundTrip(t, dr, func(d *xdr.Decoder) *ReaddirReply {
		v := DecodeReaddirReply(d)
		return &v
	})
	if len(gd.Entries) != 2 || gd.Entries[1].Name != "b" || gd.Entries[1].Fileid != 2 {
		t.Errorf("ReaddirReply: %+v", gd)
	}

	ra := &RenameArgs{SrcDir: h, SrcName: "x", DstDir: Handle{FSID: 1, Ino: 9}, DstName: "y"}
	if got := roundTrip(t, ra, func(d *xdr.Decoder) *RenameArgs {
		v := DecodeRenameArgs(d)
		return &v
	}); *got != *ra {
		t.Errorf("RenameArgs: %+v", got)
	}

	sa := &SetattrArgs{Handle: h, SetSize: true, Size: 0, SetMode: false, Mode: 0}
	if got := roundTrip(t, sa, func(d *xdr.Decoder) *SetattrArgs {
		v := DecodeSetattrArgs(d)
		return &v
	}); *got != *sa {
		t.Errorf("SetattrArgs: %+v", got)
	}

	ro := &ReopenArgs{Handle: h, Readers: 2, Writers: 1, Version: 44, HasDirty: true}
	if got := roundTrip(t, ro, func(d *xdr.Decoder) *ReopenArgs {
		v := DecodeReopenArgs(d)
		return &v
	}); *got != *ro {
		t.Errorf("ReopenArgs: %+v", got)
	}

	si := &ServerInfoReply{Status: OK, Epoch: 99, InGrace: true}
	if got := roundTrip(t, si, func(d *xdr.Decoder) *ServerInfoReply {
		v := DecodeServerInfoReply(d)
		return &v
	}); *got != *si {
		t.Errorf("ServerInfoReply: %+v", got)
	}
}

func TestStatusMapping(t *testing.T) {
	cases := []struct {
		err  error
		want Status
	}{
		{nil, OK},
		{localfs.ErrNoEnt, ErrNoEnt},
		{fmt.Errorf("wrapped: %w", localfs.ErrNoEnt), ErrNoEnt},
		{localfs.ErrExist, ErrExist},
		{localfs.ErrNotDir, ErrNotDir},
		{localfs.ErrIsDir, ErrIsDir},
		{localfs.ErrNotEmpty, ErrNotEmpty},
		{localfs.ErrStale, ErrStale},
		{localfs.ErrInval, ErrInval},
		{errors.New("mystery"), ErrIO},
	}
	for _, c := range cases {
		if got := StatusFromErr(c.err); got != c.want {
			t.Errorf("StatusFromErr(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestStatusErrRoundTrip(t *testing.T) {
	if OK.Err() != nil {
		t.Error("OK.Err() != nil")
	}
	err := ErrStale.Err()
	if err == nil || StatusOf(err) != ErrStale {
		t.Errorf("status error round trip: %v -> %v", err, StatusOf(err))
	}
	if StatusOf(nil) != OK {
		t.Error("StatusOf(nil)")
	}
	if StatusOf(errors.New("x")) != ErrIO {
		t.Error("StatusOf(unknown)")
	}
}

func TestProcNames(t *testing.T) {
	cases := map[string]string{
		ProcName(ProgNFS, ProcLookup):          "lookup",
		ProcName(ProgNFS, ProcOpen):            "open",
		ProcName(ProgNFS, ProcClose):           "close",
		ProcName(ProgCallback, CbProcCallback): "callback",
		ProcName(ProgNFS, ProcRead):            "read",
		ProcName(ProgNFS, ProcWrite):           "write",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("ProcName = %q, want %q", got, want)
		}
	}
}

func TestQuickHandleRoundTrip(t *testing.T) {
	f := func(fsid uint32, ino uint64, gen uint32) bool {
		h := Handle{FSID: fsid, Ino: ino, Gen: gen}
		e := xdr.NewEncoder()
		h.Encode(e)
		return DecodeHandle(xdr.NewDecoder(e.Bytes())) == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickWriteArgsRoundTrip(t *testing.T) {
	f := func(ino uint64, off int64, data []byte) bool {
		in := &WriteArgs{Handle: Handle{Ino: ino}, Offset: off, Data: data}
		d := xdr.NewDecoder(Marshal(in))
		out := DecodeWriteArgs(d)
		if d.Err() != nil {
			return false
		}
		return out.Handle.Ino == ino && out.Offset == off &&
			(len(out.Data) == len(data) && (len(data) == 0 || bytes.Equal(out.Data, data)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFattrFromAttr(t *testing.T) {
	a := localfs.Attr{
		Ino: 5, Gen: 2, Type: localfs.TypeDirectory, Mode: 0o755,
		Nlink: 3, Size: 4096, Blocks: 1, Mtime: 1000,
	}
	f := FattrFromAttr(a, 4096)
	if !f.IsDir() || f.Fileid != 5 || f.Gen != 2 || f.Size != 4096 || f.Mtime != 1000 || f.BlockSize != 4096 {
		t.Errorf("FattrFromAttr = %+v", f)
	}
}

func TestDumpStateReplyRoundTrip(t *testing.T) {
	in := &DumpStateReply{
		Status: OK,
		Epoch:  7,
		Entries: []DumpEntry{
			{
				Handle: Handle{FSID: 1, Ino: 5, Gen: 2}, State: 3,
				StateName: "ONE-RDR-DIRTY", Version: 9, LastWriter: "clientA",
				Inconsistent: true,
				Clients: []DumpClient{
					{Client: "clientA", Readers: 1, Writers: 0, Caching: true},
					{Client: "clientB", Readers: 2, Writers: 1, Caching: false},
				},
			},
			{Handle: Handle{FSID: 1, Ino: 6, Gen: 1}, StateName: "CLOSED"},
		},
	}
	d := xdr.NewDecoder(Marshal(in))
	out := DecodeDumpStateReply(d)
	if d.Err() != nil || d.Remaining() != 0 {
		t.Fatalf("decode: %v, %d left", d.Err(), d.Remaining())
	}
	if out.Epoch != 7 || len(out.Entries) != 2 {
		t.Fatalf("out %+v", out)
	}
	e := out.Entries[0]
	if e.StateName != "ONE-RDR-DIRTY" || e.LastWriter != "clientA" || !e.Inconsistent || len(e.Clients) != 2 {
		t.Errorf("entry %+v", e)
	}
	if e.Clients[1].Client != "clientB" || e.Clients[1].Writers != 1 || e.Clients[1].Caching {
		t.Errorf("client %+v", e.Clients[1])
	}
	// Error replies carry no body.
	bad := &DumpStateReply{Status: ErrIO, Epoch: 9}
	out2 := DecodeDumpStateReply(xdr.NewDecoder(Marshal(bad)))
	if out2.Status != ErrIO || out2.Epoch != 0 {
		t.Errorf("error reply %+v", out2)
	}
}

func TestCommitPipelineMessages(t *testing.T) {
	h := Handle{FSID: 1, Ino: 42, Gen: 7}

	wa := &WriteArgs{Handle: h, Offset: 4096, Data: []byte("unstable"), Unstable: true}
	gw := roundTrip(t, wa, func(d *xdr.Decoder) *WriteArgs {
		v := DecodeWriteArgs(d)
		return &v
	})
	if gw.Handle != h || gw.Offset != 4096 || !gw.Unstable || !bytes.Equal(gw.Data, wa.Data) {
		t.Errorf("WriteArgs: %+v", gw)
	}

	wr := &WriteReply{Status: OK, Attr: Fattr{Size: 4104, Mtime: 3}, Committed: false, Verifier: 5}
	if got := roundTrip(t, wr, func(d *xdr.Decoder) *WriteReply {
		v := DecodeWriteReply(d)
		return &v
	}); *got != *wr {
		t.Errorf("WriteReply: %+v", got)
	}
	// Error replies carry no body after the status.
	werr := &WriteReply{Status: ErrStale, Verifier: 99}
	if got := roundTrip(t, werr, func(d *xdr.Decoder) *WriteReply {
		v := DecodeWriteReply(d)
		return &v
	}); got.Status != ErrStale || got.Verifier != 0 {
		t.Errorf("error WriteReply: %+v", got)
	}

	ca := &CommitArgs{Handle: h}
	if got := roundTrip(t, ca, func(d *xdr.Decoder) *CommitArgs {
		v := DecodeCommitArgs(d)
		return &v
	}); *got != *ca {
		t.Errorf("CommitArgs: %+v", got)
	}

	cr := &CommitReply{Status: OK, Verifier: 12}
	if got := roundTrip(t, cr, func(d *xdr.Decoder) *CommitReply {
		v := DecodeCommitReply(d)
		return &v
	}); *got != *cr {
		t.Errorf("CommitReply: %+v", got)
	}
}

func TestProcCommitName(t *testing.T) {
	if got := ProcName(ProgNFS, ProcCommit); got != "commit" {
		t.Errorf("ProcName(commit) = %q", got)
	}
}
